//! Typed reconciliation plans: the ordered action list one diff round
//! produces.
//!
//! A [`Plan`] is what the reconciler decides to *do* after comparing a
//! [`FleetSpec`](crate::FleetSpec) against a live observation. It is
//! plain data — inspectable, displayable, testable — and execution is a
//! separate step, so tests can assert on what would happen without an
//! engine, and convergence reports can show the operator exactly which
//! actions each round took.

use duality_core::InstanceKey;
use duality_service::AdmissionPolicy;

/// One reconciliation step against the live engine.
///
/// Variants are listed in execution-priority order: policy flips first
/// (cheap, affects everything queued behind them), then worker scaling,
/// then per-tenant pool population, then stray eviction last (never
/// evict before the replacement is warm).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Flip the engine's admission policy.
    SetAdmission {
        /// The policy the spec wants.
        policy: AdmissionPolicy,
    },
    /// Scale the worker fleet from `from` live threads to `to`.
    ScaleWorkers {
        /// Live worker count at observation time.
        from: usize,
        /// Desired worker count.
        to: usize,
    },
    /// Warm the named tenant's desired (possibly derated) solver into
    /// its home shard pool.
    PrewarmTenant {
        /// The tenant's spec name.
        tenant: String,
    },
    /// Install the tenant's derated spec — a copy-on-write respec of its
    /// base instance — as its serving solver.
    DerateRegion {
        /// The tenant's spec name.
        tenant: String,
        /// Capacity percentage of the base spec (`< 100` here; 100 is
        /// expressed as [`Action::PrewarmTenant`]).
        percent: u32,
    },
    /// Evict a resident solver no spec'd tenant wants anymore.
    EvictTenant {
        /// The pool key to evict.
        key: InstanceKey,
    },
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::SetAdmission { policy } => write!(f, "set-admission {policy:?}"),
            Action::ScaleWorkers { from, to } => write!(f, "scale-workers {from} -> {to}"),
            Action::PrewarmTenant { tenant } => write!(f, "prewarm {tenant}"),
            Action::DerateRegion { tenant, percent } => {
                write!(f, "derate {tenant} to {percent}%")
            }
            Action::EvictTenant { key } => write!(f, "evict {key}"),
        }
    }
}

/// The ordered action list one diff round produced. An empty plan means
/// the observation already matches the spec.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Plan {
    /// Actions in execution order.
    pub actions: Vec<Action>,
}

impl Plan {
    /// The number of actions in the plan.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan has nothing to do (the converged state).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "plan: converged (nothing to do)");
        }
        write!(f, "plan: {} action(s)", self.len())?;
        for action in &self.actions {
            write!(f, "\n  - {action}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_read_like_an_operator_log() {
        let plan = Plan {
            actions: vec![
                Action::SetAdmission {
                    policy: AdmissionPolicy::Reject,
                },
                Action::ScaleWorkers { from: 1, to: 4 },
                Action::PrewarmTenant {
                    tenant: "grid-a".into(),
                },
                Action::DerateRegion {
                    tenant: "grid-b".into(),
                    percent: 40,
                },
            ],
        };
        let text = plan.to_string();
        for needle in [
            "4 action(s)",
            "set-admission Reject",
            "scale-workers 1 -> 4",
            "prewarm grid-a",
            "derate grid-b to 40%",
        ] {
            assert!(text.contains(needle), "{text}");
        }
        assert_eq!(plan.len(), 4);
        assert!(Plan::default().is_empty());
        assert!(Plan::default().to_string().contains("converged"));
    }
}
