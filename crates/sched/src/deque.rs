//! The per-worker bounded stealing deque.
//!
//! Each worker owns exactly one `StealDeque`. The owner operates on the
//! **hot** end (`push`/`pop`, LIFO) so the job it runs next is the one
//! most recently touched — the best cache-locality bet. Thieves operate
//! on the **cold** end (`steal`/`steal_batch`, FIFO) so migration takes
//! the *oldest* work, which preserves rough submission-order fairness
//! and steals the jobs least likely to be warm in the owner's cache.
//!
//! The deque is bounded: `push` hands the job back instead of growing,
//! and the scheduler overflows it to the global injector. Depth
//! accounting lives in [`crate::Scheduler`], not here — this type is a
//! dumb bounded container with two ends.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One worker's bounded deque: LIFO for the owner, FIFO for thieves.
#[derive(Debug)]
pub struct StealDeque<T> {
    jobs: Mutex<VecDeque<T>>,
    capacity: usize,
    /// Set when the owning worker retires (cooperative scale-down). A
    /// retired deque stops receiving round-robin submissions; anything
    /// it still holds is drained by thieves.
    retired: AtomicBool,
}

impl<T> StealDeque<T> {
    /// A new empty deque holding at most `capacity` jobs (clamped ≥ 1).
    pub fn new(capacity: usize) -> StealDeque<T> {
        StealDeque {
            jobs: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            retired: AtomicBool::new(false),
        }
    }

    /// The bound this deque was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("deque lock").len()
    }

    /// Whether the deque currently holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner push onto the hot end. `Err(job)` hands the job back when
    /// the deque is at capacity; the caller routes it to the injector.
    pub fn push(&self, job: T) -> Result<(), T> {
        let mut jobs = self.jobs.lock().expect("deque lock");
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        Ok(())
    }

    /// Owner pop from the hot end (LIFO): the most recently pushed job,
    /// the one most likely to still be warm.
    pub fn pop(&self) -> Option<T> {
        self.jobs.lock().expect("deque lock").pop_back()
    }

    /// Thief pop from the cold end (FIFO): the oldest queued job.
    pub fn steal(&self) -> Option<T> {
        self.jobs.lock().expect("deque lock").pop_front()
    }

    /// Thief batch pop: takes up to `max` jobs from the cold end, oldest
    /// first, never more than half (rounded up) of what the victim
    /// holds — the owner keeps the warm half.
    pub fn steal_batch(&self, max: usize) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut jobs = self.jobs.lock().expect("deque lock");
        let take = jobs.len().div_ceil(2).min(max);
        jobs.drain(..take).collect()
    }

    /// Marks the owning worker as retired; the scheduler skips retired
    /// deques when routing new submissions.
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Whether the owning worker has retired.
    pub(crate) fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let deque = StealDeque::new(8);
        for i in 1..=4 {
            deque.push(i).unwrap();
        }
        assert_eq!(deque.pop(), Some(4), "owner takes the hot end");
        assert_eq!(deque.steal(), Some(1), "thief takes the cold end");
        assert_eq!(deque.pop(), Some(3));
        assert_eq!(deque.steal(), Some(2));
        assert_eq!(deque.pop(), None);
        assert!(deque.is_empty());
    }

    #[test]
    fn push_bounces_at_capacity_and_capacity_clamps() {
        let deque = StealDeque::new(2);
        assert_eq!(deque.capacity(), 2);
        deque.push('a').unwrap();
        deque.push('b').unwrap();
        assert_eq!(deque.push('c'), Err('c'), "full deque hands the job back");
        assert_eq!(deque.len(), 2);

        let tiny: StealDeque<u8> = StealDeque::new(0);
        assert_eq!(tiny.capacity(), 1, "capacity clamps to at least one");
    }

    #[test]
    fn steal_batch_takes_at_most_the_cold_half() {
        let deque = StealDeque::new(16);
        for i in 0..7 {
            deque.push(i).unwrap();
        }
        // 7 queued → half rounded up is 4, oldest first.
        assert_eq!(deque.steal_batch(16), vec![0, 1, 2, 3]);
        assert_eq!(deque.len(), 3);
        // `max` caps the batch below the half bound.
        assert_eq!(deque.steal_batch(1), vec![4]);
        assert_eq!(deque.steal_batch(0), Vec::<i32>::new());
        assert_eq!(deque.pop(), Some(6), "owner end is untouched by thieves");
    }
}
