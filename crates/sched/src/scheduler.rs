//! The work-stealing scheduler: bounded admission over per-worker
//! deques, a global overflow injector, and a parker that wakes exactly
//! one idle worker per submit.
//!
//! # Shape
//!
//! ```text
//!   submit ──admit (depth CAS vs capacity)──▶ round-robin deque push
//!                                               │ full? ──▶ injector
//!                                               ▼
//!   worker w: own deque (LIFO) ─▶ injector (FIFO) ─▶ steal siblings (FIFO)
//! ```
//!
//! Admission is a single atomic depth counter checked against capacity,
//! so `depth`/`high_water` are **exact at submit time** — summed when a
//! job is admitted, not sampled from the deques later. The deques and
//! the injector only decide *where* an already-admitted job waits.
//!
//! # Wakeup protocol
//!
//! All lifecycle state (pause gate, retire credits, close) transitions
//! under the `gate` mutex before notifying, and waiters re-check the
//! flags under the same mutex, so lifecycle wakeups cannot be missed.
//! The submit fast path, however, does *not* take the gate: it checks
//! `parked > 0` lock-free and only locks to notify when a worker is
//! actually parked. That check races with a worker deciding to park, so
//! both sides run a Dekker-style handshake through `SeqCst` operations:
//! the parker increments `parked` and *then* re-reads `depth` (under
//! the gate), the submitter increments `depth` and *then* reads
//! `parked`. The total `SeqCst` order guarantees at least one side sees
//! the other — either the submitter locks the gate and its notify lands
//! (the parker is in `wait`, or will re-check `depth` after the gate is
//! released), or the parker sees the new depth and never parks. Blocked
//! pushers and `claim` run the mirrored handshake on `pushers`/`depth`.

use crate::deque::StealDeque;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// How many jobs a thief migrates per successful steal (at most half of
/// the victim's queue): the first is returned, the rest land in the
/// thief's own deque so its next pops stay local.
const STEAL_BATCH: usize = 4;

/// How many injector jobs a worker drains per visit (one returned, the
/// followers shelved locally).
const INJECTOR_BATCH: usize = 4;

/// How long a worker naps when the depth counter shows admitted jobs
/// that are not visible in any deque yet (a submit is mid-flight
/// between admission and its deque push, or a sibling popped a job it
/// has not claimed). The window is nanoseconds-wide in practice; the
/// nap just bounds the rescan spin.
const INFLIGHT_NAP: Duration = Duration::from_micros(200);

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The scheduler is at capacity and the caller declined to block.
    Full,
    /// The scheduler has been closed; no new work is admitted.
    Closed,
}

/// Where a dequeued job came from, stamped into telemetry spans so
/// dequeue attribution stays exact under stealing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DequeueSource {
    /// Popped from the worker's own deque (hot end). Jobs a thief
    /// shelves locally after a batch steal also pop as `Local`.
    Local,
    /// Taken from the global overflow injector.
    Injector,
    /// Stolen from a sibling worker's deque (cold end).
    Stolen,
}

impl DequeueSource {
    /// Stable lowercase name, for logs and serialized spans.
    pub fn name(self) -> &'static str {
        match self {
            DequeueSource::Local => "local",
            DequeueSource::Injector => "injector",
            DequeueSource::Stolen => "stolen",
        }
    }
}

impl fmt::Display for DequeueSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a worker gets back from [`Scheduler::pop`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// A job to run, tagged with where it was found.
    Job(T, DequeueSource),
    /// A retire credit: this worker should exit its loop. Retirement
    /// outranks queued jobs and the pause gate.
    Retire,
}

/// Scheduler activity counters, all monotonic since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs migrated from a sibling's deque (every job of a batch
    /// steal counts).
    pub steals: u64,
    /// Steal attempts that found the victim's deque empty.
    pub steal_fails: u64,
    /// Jobs routed to the global injector because the target deque was
    /// full (or no active deque existed).
    pub injector_overflows: u64,
    /// Times a worker parked on the idle condvar.
    pub parks: u64,
    /// Submit-driven single wakeups of a parked worker.
    pub unparks: u64,
}

impl fmt::Display for SchedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steals ({} failed), {} injector overflows, {} parks / {} unparks",
            self.steals, self.steal_fails, self.injector_overflows, self.parks, self.unparks
        )
    }
}

/// Lifecycle state guarded by the gate mutex.
#[derive(Debug, Default)]
struct Gate {
    /// Outstanding retire credits; each is consumed by exactly one
    /// worker, which exits.
    retiring: usize,
}

#[derive(Debug, Default)]
struct Counters {
    steals: AtomicU64,
    steal_fails: AtomicU64,
    injector_overflows: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

/// A bounded MPMC work-stealing scheduler.
///
/// Semantics mirror a bounded job queue — capacity clamps to ≥ 1,
/// non-blocking pushes refuse with [`PushError::Full`], blocking pushes
/// park until space or close, a pause gate buffers admitted work until
/// [`resume`](Scheduler::resume), [`close`](Scheduler::close) drains
/// then yields sticky `None`, and [`retire`](Scheduler::retire) credits
/// outrank everything — but dequeues run over per-worker stealing
/// deques instead of one global mutex queue.
#[derive(Debug)]
pub struct Scheduler<T> {
    deques: RwLock<Vec<Arc<StealDeque<T>>>>,
    injector: Mutex<VecDeque<T>>,
    /// Jobs admitted and not yet claimed by a worker. The sole
    /// admission authority: pushes CAS this against `capacity`.
    depth: AtomicUsize,
    high_water: AtomicUsize,
    capacity: usize,
    deque_capacity: usize,
    closed: AtomicBool,
    started: AtomicBool,
    gate: Mutex<Gate>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Workers currently in the idle wait. Incremented only under the
    /// gate mutex; read lock-free by the submit path.
    parked: AtomicUsize,
    /// Pushers currently blocked on `not_full`. Incremented only under
    /// the gate mutex; read lock-free by `claim`.
    pushers: AtomicUsize,
    /// Round-robin cursor for spreading submissions across deques.
    cursor: AtomicUsize,
    counters: Counters,
}

impl<T> Scheduler<T> {
    /// A scheduler for `workers` workers sharing `capacity` admission
    /// slots (both clamped ≥ 1). When `started` is false the pause gate
    /// is closed: pushes are admitted and buffered but no job is handed
    /// to a worker until [`resume`](Scheduler::resume) or
    /// [`close`](Scheduler::close). Per-worker deques default to an
    /// even share of the capacity (at least 8); the injector absorbs
    /// any imbalance.
    pub fn new(workers: usize, capacity: usize, started: bool) -> Scheduler<T> {
        let capacity = capacity.max(1);
        let workers = workers.max(1);
        let deque_capacity = capacity.div_ceil(workers).max(8);
        Scheduler::with_deque_capacity(workers, capacity, deque_capacity, started)
    }

    /// As [`new`](Scheduler::new), with an explicit per-deque bound —
    /// mainly for tests that want to force injector overflow.
    pub fn with_deque_capacity(
        workers: usize,
        capacity: usize,
        deque_capacity: usize,
        started: bool,
    ) -> Scheduler<T> {
        let deque_capacity = deque_capacity.max(1);
        let deques = (0..workers.max(1))
            .map(|_| Arc::new(StealDeque::new(deque_capacity)))
            .collect();
        Scheduler {
            deques: RwLock::new(deques),
            injector: Mutex::new(VecDeque::new()),
            depth: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            capacity: capacity.max(1),
            deque_capacity,
            closed: AtomicBool::new(false),
            started: AtomicBool::new(started),
            gate: Mutex::new(Gate::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            parked: AtomicUsize::new(0),
            pushers: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            counters: Counters::default(),
        }
    }

    /// Total admission slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs admitted and not yet claimed by a worker — exact, because
    /// admission itself maintains the counter.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// The maximum `depth` ever reached, recorded at admission time.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Whether [`close`](Scheduler::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            steals: self.counters.steals.load(Ordering::Relaxed),
            steal_fails: self.counters.steal_fails.load(Ordering::Relaxed),
            injector_overflows: self.counters.injector_overflows.load(Ordering::Relaxed),
            parks: self.counters.parks.load(Ordering::Relaxed),
            unparks: self.counters.unparks.load(Ordering::Relaxed),
        }
    }

    /// Ensures a deque exists for worker ids `0..=worker`. Called by
    /// the engine when it spawns a worker; `pop` also self-registers,
    /// so explicit registration is an optimization, not a requirement.
    pub fn register_worker(&self, worker: usize) {
        {
            let deques = self.deques.read().expect("sched deque registry");
            if worker < deques.len() {
                return;
            }
        }
        let mut deques = self.deques.write().expect("sched deque registry");
        while deques.len() <= worker {
            deques.push(Arc::new(StealDeque::new(self.deque_capacity)));
        }
    }

    /// Submits one job. With `block`, parks until an admission slot
    /// frees or the scheduler closes; without, refuses immediately with
    /// [`PushError::Full`]. Exactly one parked worker is woken.
    pub fn push(&self, job: T, block: bool) -> Result<(), PushError> {
        self.admit(block)?;
        self.deliver(job);
        self.wake(1);
        Ok(())
    }

    /// Submits a batch, amortizing admission and wakeups: slots are
    /// reserved in chunks (one CAS per chunk instead of per job), jobs
    /// are spread round-robin, and at most one wakeup per admitted job
    /// is issued in a single pass. On refusal, returns the unadmitted
    /// suffix with the reason; the prefix `jobs.len() - rest.len()` was
    /// delivered. With `block`, only [`PushError::Closed`] can refuse.
    pub fn push_batch(&self, jobs: Vec<T>, block: bool) -> Result<(), (Vec<T>, PushError)> {
        let mut rest: VecDeque<T> = jobs.into();
        loop {
            if rest.is_empty() {
                return Ok(());
            }
            if self.closed.load(Ordering::SeqCst) {
                return Err((rest.into(), PushError::Closed));
            }
            let granted = self.try_admit(rest.len());
            if granted > 0 {
                let batch: Vec<T> = rest.drain(..granted).collect();
                let woken = self.deliver_batch(batch);
                self.wake(woken);
                continue;
            }
            if !block {
                return Err((rest.into(), PushError::Full));
            }
            match self.park_pusher() {
                Ok(()) => continue,
                Err(err) => return Err((rest.into(), err)),
            }
        }
    }

    /// One worker's dequeue: own deque first (LIFO), then the injector,
    /// then batch-steals from siblings (FIFO). Blocks while the
    /// scheduler is paused or empty; returns `None` (sticky) once the
    /// scheduler is closed *and* drained.
    pub fn pop(&self, worker: usize) -> Option<Popped<T>> {
        self.register_worker(worker);
        loop {
            // Lifecycle gate: a pending retirement outranks queued work
            // and the pause gate; the pause gate holds dispatch until
            // resume or close.
            {
                let mut gate = self.gate.lock().expect("sched gate");
                loop {
                    if gate.retiring > 0 {
                        gate.retiring -= 1;
                        drop(gate);
                        self.deque_of(worker).retire();
                        return Some(Popped::Retire);
                    }
                    if self.started.load(Ordering::SeqCst) || self.closed.load(Ordering::SeqCst) {
                        break;
                    }
                    gate = self.not_empty.wait(gate).expect("sched gate");
                }
            }
            if let Some((job, source)) = self.try_dequeue(worker) {
                self.claim();
                return Some(Popped::Job(job, source));
            }
            // Nothing visible anywhere: decide between ending, parking,
            // and a bounded in-flight nap — under the gate, so lifecycle
            // notifies cannot slip between the checks and the wait.
            let mut gate = self.gate.lock().expect("sched gate");
            if gate.retiring > 0 {
                gate.retiring -= 1;
                drop(gate);
                self.deque_of(worker).retire();
                return Some(Popped::Retire);
            }
            if self.depth.load(Ordering::SeqCst) == 0 {
                if self.closed.load(Ordering::SeqCst) {
                    return None;
                }
                // Dekker handshake with `push`: advertise the park,
                // then re-check depth before actually waiting.
                self.parked.fetch_add(1, Ordering::SeqCst);
                if self.depth.load(Ordering::SeqCst) > 0 {
                    self.parked.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                self.counters.parks.fetch_add(1, Ordering::Relaxed);
                let parked_gate = self.not_empty.wait(gate).expect("sched gate");
                self.parked.fetch_sub(1, Ordering::SeqCst);
                drop(parked_gate);
            } else {
                // Admitted but invisible: a submit is mid-flight or a
                // sibling holds an unclaimed pop. Nap briefly, rescan.
                let (napped_gate, _) = self
                    .not_empty
                    .wait_timeout(gate, INFLIGHT_NAP)
                    .expect("sched gate");
                drop(napped_gate);
            }
        }
    }

    /// Grants `n` retire credits; each is consumed by exactly one
    /// worker, which gets [`Popped::Retire`] ahead of any queued job.
    pub fn retire(&self, n: usize) {
        let mut gate = self.gate.lock().expect("sched gate");
        gate.retiring += n;
        self.not_empty.notify_all();
    }

    /// Opens the pause gate: buffered and future jobs dispatch.
    pub fn resume(&self) {
        let _gate = self.gate.lock().expect("sched gate");
        self.started.store(true, Ordering::SeqCst);
        self.not_empty.notify_all();
    }

    /// Closes the scheduler: new pushes refuse with
    /// [`PushError::Closed`], blocked pushers are released, workers
    /// drain everything already admitted (the pause gate no longer
    /// holds them), then see sticky `None`.
    pub fn close(&self) {
        let _gate = self.gate.lock().expect("sched gate");
        self.closed.store(true, Ordering::SeqCst);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Reserves one admission slot, parking while full if `block`.
    fn admit(&self, block: bool) -> Result<(), PushError> {
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(PushError::Closed);
            }
            if self.try_admit(1) == 1 {
                return Ok(());
            }
            if !block {
                return Err(PushError::Full);
            }
            self.park_pusher()?;
        }
    }

    /// CAS-reserves up to `want` admission slots, recording the exact
    /// high-water mark at success. Returns how many were granted.
    fn try_admit(&self, want: usize) -> usize {
        let mut depth = self.depth.load(Ordering::SeqCst);
        loop {
            let granted = want.min(self.capacity.saturating_sub(depth));
            if granted == 0 {
                return 0;
            }
            match self.depth.compare_exchange_weak(
                depth,
                depth + granted,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.high_water
                        .fetch_max(depth + granted, Ordering::Relaxed);
                    return granted;
                }
                Err(current) => depth = current,
            }
        }
    }

    /// Parks the calling pusher until a slot may have freed. Returns
    /// `Ok` to retry admission, `Err` when the scheduler closed. The
    /// mirrored Dekker handshake with `claim`: advertise on `pushers`,
    /// then re-check capacity under the gate before waiting.
    fn park_pusher(&self) -> Result<(), PushError> {
        let gate = self.gate.lock().expect("sched gate");
        if self.closed.load(Ordering::SeqCst) {
            return Err(PushError::Closed);
        }
        self.pushers.fetch_add(1, Ordering::SeqCst);
        if self.depth.load(Ordering::SeqCst) < self.capacity {
            self.pushers.fetch_sub(1, Ordering::SeqCst);
            return Ok(());
        }
        let gate = self.not_full.wait(gate).expect("sched gate");
        self.pushers.fetch_sub(1, Ordering::SeqCst);
        drop(gate);
        Ok(())
    }

    /// Releases one admission slot after a successful dequeue and
    /// notifies a blocked pusher if any is advertised.
    fn claim(&self) {
        self.depth.fetch_sub(1, Ordering::SeqCst);
        if self.pushers.load(Ordering::SeqCst) > 0 {
            let _gate = self.gate.lock().expect("sched gate");
            self.not_full.notify_one();
        }
    }

    /// Places one admitted job: the next active deque in round-robin
    /// order, overflowing to the injector when it is full (or when
    /// every deque has retired).
    fn deliver(&self, job: T) {
        let deques = self.deques.read().expect("sched deque registry");
        let n = deques.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let mut target = None;
        for offset in 0..n {
            let deque = &deques[(start + offset) % n];
            if !deque.is_retired() {
                target = Some(deque);
                break;
            }
        }
        let spilled = match target {
            Some(deque) => deque.push(job).err(),
            None => Some(job),
        };
        if let Some(job) = spilled {
            self.counters
                .injector_overflows
                .fetch_add(1, Ordering::Relaxed);
            self.injector.lock().expect("sched injector").push_back(job);
        }
    }

    /// Places an admitted batch round-robin across active deques,
    /// trying every deque before overflowing a job to the injector.
    /// Returns the batch size (the wakeup budget).
    fn deliver_batch(&self, batch: Vec<T>) -> usize {
        let woken = batch.len();
        let deques = self.deques.read().expect("sched deque registry");
        let n = deques.len();
        let start = self.cursor.fetch_add(woken, Ordering::Relaxed);
        for (i, job) in batch.into_iter().enumerate() {
            let mut job = Some(job);
            for offset in 0..n {
                let deque = &deques[(start + i + offset) % n];
                if deque.is_retired() {
                    continue;
                }
                match deque.push(job.take().expect("job still in hand")) {
                    Ok(()) => break,
                    Err(back) => job = Some(back),
                }
            }
            if let Some(job) = job {
                self.counters
                    .injector_overflows
                    .fetch_add(1, Ordering::Relaxed);
                self.injector.lock().expect("sched injector").push_back(job);
            }
        }
        woken
    }

    /// Wakes up to `budget` parked workers, one notify each — never the
    /// whole herd. Skips the gate lock entirely when nobody is parked
    /// (the Dekker handshake in `pop` covers the race).
    fn wake(&self, budget: usize) {
        let parked = self.parked.load(Ordering::SeqCst);
        if parked == 0 || budget == 0 {
            return;
        }
        let wakes = budget.min(parked);
        let _gate = self.gate.lock().expect("sched gate");
        for _ in 0..wakes {
            self.not_empty.notify_one();
        }
        self.counters
            .unparks
            .fetch_add(wakes as u64, Ordering::Relaxed);
    }

    /// The worker's own deque (registering it if needed).
    fn deque_of(&self, worker: usize) -> Arc<StealDeque<T>> {
        self.register_worker(worker);
        Arc::clone(&self.deques.read().expect("sched deque registry")[worker])
    }

    /// One full dequeue scan for `worker`: local pop, injector drain,
    /// then batch steals from siblings.
    fn try_dequeue(&self, worker: usize) -> Option<(T, DequeueSource)> {
        let deques = self.deques.read().expect("sched deque registry");
        let own = &deques[worker];
        if let Some(job) = own.pop() {
            return Some((job, DequeueSource::Local));
        }
        if let Some(job) = self.drain_injector(own) {
            return Some((job, DequeueSource::Injector));
        }
        let n = deques.len();
        for offset in 1..n {
            let victim = &deques[(worker + offset) % n];
            let mut batch = victim.steal_batch(STEAL_BATCH);
            if batch.is_empty() {
                self.counters.steal_fails.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.counters
                .steals
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            let job = batch.remove(0);
            self.shelve(own, batch);
            return Some((job, DequeueSource::Stolen));
        }
        None
    }

    /// Pops one injector job, moving a few followers into the worker's
    /// own deque so its next pops stay local.
    fn drain_injector(&self, own: &StealDeque<T>) -> Option<T> {
        let mut injector = self.injector.lock().expect("sched injector");
        let job = injector.pop_front()?;
        let mut followers = Vec::new();
        while followers.len() + 1 < INJECTOR_BATCH {
            match injector.pop_front() {
                Some(next) => followers.push(next),
                None => break,
            }
        }
        drop(injector);
        self.shelve(own, followers);
        Some(job)
    }

    /// Parks surplus batch jobs in the worker's own deque, overflowing
    /// back to the injector when it is full.
    fn shelve(&self, own: &StealDeque<T>, batch: Vec<T>) {
        let mut overflow = Vec::new();
        for job in batch {
            if let Err(back) = own.push(job) {
                overflow.push(back);
            }
        }
        if !overflow.is_empty() {
            self.counters
                .injector_overflows
                .fetch_add(overflow.len() as u64, Ordering::Relaxed);
            let mut injector = self.injector.lock().expect("sched injector");
            for job in overflow {
                injector.push_back(job);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    /// Drains every job reachable by `worker`, returning the payloads
    /// and sources in pop order. Stops at `Retire` or `None`.
    fn drain_jobs(sched: &Scheduler<u32>, worker: usize) -> Vec<(u32, DequeueSource)> {
        let mut out = Vec::new();
        while let Some(Popped::Job(job, source)) = sched.pop(worker) {
            out.push((job, source));
        }
        out
    }

    #[test]
    fn owner_pops_lifo_and_accounting_is_exact() {
        let sched: Scheduler<u32> = Scheduler::new(1, 4, true);
        for job in [1, 2, 3] {
            sched.push(job, false).unwrap();
        }
        assert_eq!(sched.depth(), 3);
        assert_eq!(sched.high_water(), 3);
        // One worker, one deque: owner order is LIFO.
        assert_eq!(sched.pop(0), Some(Popped::Job(3, DequeueSource::Local)));
        assert_eq!(sched.depth(), 2);
        sched.push(9, false).unwrap();
        assert_eq!(sched.pop(0), Some(Popped::Job(9, DequeueSource::Local)));
        assert_eq!(sched.pop(0), Some(Popped::Job(2, DequeueSource::Local)));
        assert_eq!(sched.pop(0), Some(Popped::Job(1, DequeueSource::Local)));
        assert_eq!(sched.depth(), 0);
        assert_eq!(sched.high_water(), 3, "high water is a running maximum");
    }

    #[test]
    fn nonblocking_push_refuses_when_full() {
        let sched: Scheduler<u32> = Scheduler::new(1, 2, true);
        sched.push(1, false).unwrap();
        sched.push(2, false).unwrap();
        assert_eq!(sched.push(3, false), Err(PushError::Full));
        assert_eq!(sched.depth(), 2);
        assert_eq!(sched.high_water(), 2);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let sched: Scheduler<u32> = Scheduler::new(1, 0, true);
        assert_eq!(sched.capacity(), 1);
        sched.push(1, false).unwrap();
        assert_eq!(sched.push(2, false), Err(PushError::Full));
    }

    #[test]
    fn close_drains_across_workers_then_sticks() {
        let sched: Scheduler<u32> = Scheduler::new(2, 8, true);
        for job in 0..4 {
            sched.push(job, false).unwrap();
        }
        sched.close();
        assert_eq!(sched.push(99, false), Err(PushError::Closed));
        assert_eq!(sched.push(99, true), Err(PushError::Closed));
        // One worker drains everything — its own deque plus steals from
        // the idle sibling's.
        let drained = drain_jobs(&sched, 0);
        let mut jobs: Vec<u32> = drained.iter().map(|(job, _)| *job).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, vec![0, 1, 2, 3], "close drains, loses nothing");
        assert!(
            drained
                .iter()
                .any(|(_, source)| *source == DequeueSource::Stolen),
            "draining a sibling's deque is attributed to stealing"
        );
        assert_eq!(sched.pop(0), None);
        assert_eq!(sched.pop(1), None, "end-of-queue is sticky for everyone");
        assert!(sched.stats().steals >= 1);
    }

    #[test]
    fn paused_scheduler_buffers_until_resume() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(1, 8, false));
        sched.push(5, false).unwrap();
        let popper = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || sched.pop(0))
        };
        // The popper parks at the gate; buffered work is withheld.
        thread::sleep(Duration::from_millis(30));
        assert!(!popper.is_finished(), "paused scheduler hands out nothing");
        sched.resume();
        assert_eq!(
            popper.join().unwrap(),
            Some(Popped::Job(5, DequeueSource::Local))
        );
    }

    #[test]
    fn close_releases_the_pause_gate() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(1, 8, false));
        sched.push(7, false).unwrap();
        let popper = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || (sched.pop(0), sched.pop(0)))
        };
        thread::sleep(Duration::from_millis(20));
        sched.close();
        let (first, second) = popper.join().unwrap();
        assert_eq!(
            first,
            Some(Popped::Job(7, DequeueSource::Local)),
            "close drains buffered work even if never resumed"
        );
        assert_eq!(second, None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(1, 1, true));
        sched.push(1, true).unwrap();
        let pusher = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || sched.push(2, true))
        };
        thread::sleep(Duration::from_millis(30));
        assert!(!pusher.is_finished(), "full scheduler blocks the pusher");
        assert_eq!(sched.pop(0), Some(Popped::Job(1, DequeueSource::Local)));
        assert_eq!(pusher.join().unwrap(), Ok(()));
        assert_eq!(sched.pop(0), Some(Popped::Job(2, DequeueSource::Local)));
        assert_eq!(sched.high_water(), 1, "never more than capacity admitted");
    }

    #[test]
    fn close_releases_a_blocked_pusher() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(1, 1, true));
        sched.push(1, true).unwrap();
        let pusher = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || sched.push(2, true))
        };
        thread::sleep(Duration::from_millis(20));
        sched.close();
        assert_eq!(pusher.join().unwrap(), Err(PushError::Closed));
    }

    #[test]
    fn retire_outranks_jobs_and_the_pause_gate() {
        let sched: Scheduler<u32> = Scheduler::new(1, 8, false);
        sched.push(1, false).unwrap();
        sched.retire(1);
        // Still paused, a job is queued — the retire credit wins.
        assert_eq!(sched.pop(0), Some(Popped::Retire));
        sched.resume();
        assert_eq!(sched.pop(1), Some(Popped::Job(1, DequeueSource::Stolen)));
    }

    #[test]
    fn retire_wakes_a_parked_worker() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(1, 8, true));
        let popper = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || sched.pop(0))
        };
        thread::sleep(Duration::from_millis(30));
        sched.retire(1);
        assert_eq!(popper.join().unwrap(), Some(Popped::Retire));
        assert!(sched.stats().parks >= 1, "the idle worker parked first");
    }

    #[test]
    fn submissions_spread_and_siblings_steal() {
        let sched: Scheduler<u32> = Scheduler::new(2, 16, true);
        for job in 0..6 {
            sched.push(job, false).unwrap();
        }
        {
            let deques = sched.deques.read().unwrap();
            assert_eq!(deques[0].len(), 3, "round-robin spreads evenly");
            assert_eq!(deques[1].len(), 3);
        }
        // Worker 0 drains everything alone: locals first, then steals.
        let drained = drain_jobs_until_empty(&sched, 0);
        assert_eq!(drained.len(), 6);
        let stolen = drained
            .iter()
            .filter(|(_, source)| *source == DequeueSource::Stolen)
            .count();
        assert!(stolen >= 1);
        let stats = sched.stats();
        assert_eq!(stats.steals, 3, "every migrated job counts as a steal");
        assert_eq!(sched.depth(), 0);
    }

    /// Pops exactly while jobs remain admitted (avoids parking forever
    /// on a scheduler that is never closed).
    fn drain_jobs_until_empty(sched: &Scheduler<u32>, worker: usize) -> Vec<(u32, DequeueSource)> {
        let mut out = Vec::new();
        while sched.depth() > 0 {
            match sched.pop(worker) {
                Some(Popped::Job(job, source)) => out.push((job, source)),
                other => panic!("expected a job, got {other:?}"),
            }
        }
        out
    }

    #[test]
    fn full_deque_overflows_to_the_injector() {
        let sched: Scheduler<u32> = Scheduler::with_deque_capacity(1, 8, 2, true);
        for job in 0..5 {
            sched.push(job, false).unwrap();
        }
        assert_eq!(sched.stats().injector_overflows, 3);
        assert_eq!(sched.depth(), 5, "depth spans deques plus injector");
        let drained = drain_jobs_until_empty(&sched, 0);
        assert_eq!(drained.len(), 5, "injector jobs are not lost");
        assert!(drained
            .iter()
            .any(|(_, source)| *source == DequeueSource::Injector));
        let mut jobs: Vec<u32> = drained.iter().map(|(job, _)| *job).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_batch_admits_a_prefix_and_returns_the_rest() {
        let sched: Scheduler<u32> = Scheduler::new(2, 3, true);
        let (rest, why) = sched
            .push_batch((0..5).collect(), false)
            .expect_err("two jobs do not fit");
        assert_eq!(why, PushError::Full);
        assert_eq!(rest, vec![3, 4], "the unadmitted suffix comes back");
        assert_eq!(sched.depth(), 3);
        assert_eq!(sched.high_water(), 3);
        let drained = drain_jobs_until_empty(&sched, 0);
        let mut jobs: Vec<u32> = drained.iter().map(|(job, _)| *job).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, vec![0, 1, 2]);
    }

    #[test]
    fn push_batch_refuses_everything_after_close() {
        let sched: Scheduler<u32> = Scheduler::new(1, 8, true);
        sched.close();
        let (rest, why) = sched.push_batch(vec![1, 2], true).expect_err("closed");
        assert_eq!((rest, why), (vec![1, 2], PushError::Closed));
    }

    #[test]
    fn blocking_push_batch_drains_through_concurrent_poppers() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(2, 2, true));
        let claimed = Arc::new(AtomicUsize::new(0));
        let poppers: Vec<_> = (0..2)
            .map(|worker| {
                let sched = Arc::clone(&sched);
                let claimed = Arc::clone(&claimed);
                thread::spawn(move || {
                    while sched.pop(worker).is_some() {
                        claimed.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        sched.push_batch((0..40).collect(), true).unwrap();
        sched.close();
        for popper in poppers {
            popper.join().unwrap();
        }
        // 40 jobs, 2 retire-free workers: everything claimed exactly once.
        assert_eq!(claimed.load(Ordering::SeqCst), 40);
        assert_eq!(sched.depth(), 0);
        assert!(
            sched.high_water() <= 2,
            "batch admission still honors capacity"
        );
    }

    #[test]
    fn concurrent_drain_loses_nothing_and_duplicates_nothing() {
        let sched: Arc<Scheduler<u64>> = Arc::new(Scheduler::new(4, 64, true));
        let total: u64 = 200;
        let poppers: Vec<_> = (0..4)
            .map(|worker| {
                let sched = Arc::clone(&sched);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(popped) = sched.pop(worker) {
                        if let Popped::Job(job, _) = popped {
                            got.push(job);
                        }
                    }
                    got
                })
            })
            .collect();
        for job in 0..total {
            sched.push(job, true).unwrap();
        }
        sched.close();
        let mut all: Vec<u64> = poppers
            .into_iter()
            .flat_map(|popper| popper.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
        assert_eq!(sched.depth(), 0);
    }

    #[test]
    fn stats_display_is_stable() {
        let stats = SchedStats {
            steals: 5,
            steal_fails: 2,
            injector_overflows: 1,
            parks: 7,
            unparks: 6,
        };
        assert_eq!(
            stats.to_string(),
            "5 steals (2 failed), 1 injector overflows, 7 parks / 6 unparks"
        );
    }
}
