//! `duality-sched`: a dependency-free work-stealing scheduler runtime.
//!
//! The serving layer's original job queue was a single
//! `Mutex<VecDeque>` shared by every worker — correct, but a scaling
//! wall: each dequeue serialized the whole fleet through one lock, and
//! each submit could stampede the condvar herd. This crate replaces it
//! with the classic work-stealing shape while keeping the *semantics*
//! of a bounded MPMC queue, so the serving engine migrates without
//! changing its admission, pause/resume, retire, or drain contracts:
//!
//! - **Per-worker stealing deques** ([`StealDeque`]): the owner pushes
//!   and pops the hot end (LIFO, cache locality), thieves take the cold
//!   end (FIFO, rough submission fairness), batch steals move half the
//!   victim's queue at most.
//! - **A global overflow injector**: submissions round-robin across the
//!   active deques and overflow to the injector when a deque is full,
//!   so bounded-queue admission (`Full`, blocking backpressure, exact
//!   depth/high-water at admit time) is preserved globally.
//! - **A parker** that wakes exactly one idle worker per submit (no
//!   thundering herd), and a lifecycle gate covering pause/resume,
//!   graceful drain-on-close, and cooperative [`Popped::Retire`]
//!   scale-down.
//! - **Batched paths** ([`Scheduler::push_batch`], internal steal and
//!   injector batches) that amortize synchronization per chunk instead
//!   of per job.
//!
//! Scheduling here is deliberately *orthogonal to results*: the
//! scheduler reorders execution (LIFO pops, stealing) but never
//! influences what a job computes, so a serving engine built on it can
//! keep a bit-for-bit determinism contract versus serial execution.
//!
//! ```
//! use duality_sched::{Popped, Scheduler};
//!
//! let sched: Scheduler<u32> = Scheduler::new(2, 8, true);
//! sched.push(7, false).unwrap();
//! match sched.pop(0) {
//!     Some(Popped::Job(job, source)) => {
//!         assert_eq!(job, 7);
//!         assert_eq!(source.name(), "local");
//!     }
//!     other => panic!("expected a job, got {other:?}"),
//! }
//! sched.close();
//! assert_eq!(sched.pop(0), None);
//! ```

mod deque;
mod scheduler;

pub use deque::StealDeque;
pub use scheduler::{DequeueSource, Popped, PushError, SchedStats, Scheduler};
