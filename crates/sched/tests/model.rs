//! Model tests for the stealing deque: the sequential behaviour matches
//! a reference double-ended queue exactly, and under real concurrent
//! interleavings of owner push/pop with competing thieves nothing is
//! lost and nothing is duplicated.

use duality_sched::StealDeque;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential model equivalence: any op sequence (owner push, owner
    /// pop, single steal, batch steal) agrees with a reference
    /// `VecDeque` that models the bound, the LIFO owner end and the
    /// FIFO thief end.
    #[test]
    fn deque_matches_the_reference_model(
        capacity in 1usize..6,
        ops in prop::collection::vec(0u8..4, 40),
    ) {
        let deque = StealDeque::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                0 => {
                    let pushed = deque.push(next);
                    if model.len() < capacity {
                        prop_assert_eq!(pushed, Ok(()), "model has room");
                        model.push_back(next);
                    } else {
                        prop_assert_eq!(pushed, Err(next), "full deque bounces");
                    }
                    next += 1;
                }
                1 => prop_assert_eq!(deque.pop(), model.pop_back(), "owner end is LIFO"),
                2 => prop_assert_eq!(deque.steal(), model.pop_front(), "thief end is FIFO"),
                _ => {
                    let batch = deque.steal_batch(2);
                    let take = model.len().div_ceil(2).min(2);
                    let expected: Vec<u32> = model.drain(..take).collect();
                    prop_assert_eq!(batch, expected, "batch steals the cold half");
                }
            }
            prop_assert_eq!(deque.len(), model.len());
        }
    }

    /// Concurrency conservation: an owner interleaving pushes and pops
    /// with two live thieves stealing (singly and in batches) neither
    /// loses nor duplicates a job, and each thief observes strictly
    /// increasing values — the FIFO cold end never reorders.
    #[test]
    fn concurrent_steals_lose_nothing_and_duplicate_nothing(
        capacity in 1usize..8,
        script in prop::collection::vec(0u8..3, 60),
    ) {
        let deque: Arc<StealDeque<u32>> = Arc::new(StealDeque::new(capacity));
        let done = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = (0..2)
            .map(|thief| {
                let deque = Arc::clone(&deque);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        if thief == 0 {
                            got.extend(deque.steal_batch(3));
                        } else if let Some(job) = deque.steal() {
                            got.push(job);
                        }
                        if done.load(Ordering::SeqCst) && deque.is_empty() {
                            return got;
                        }
                    }
                })
            })
            .collect();

        let mut pushed = 0u32;
        let mut owner_got = Vec::new();
        for op in script {
            if op < 2 {
                // Push twice as often as popping so the thieves see work.
                if deque.push(pushed).is_ok() {
                    pushed += 1;
                }
            } else if let Some(job) = deque.pop() {
                owner_got.push(job);
            }
        }
        done.store(true, Ordering::SeqCst);
        let stolen: Vec<Vec<u32>> = thieves
            .into_iter()
            .map(|thief| thief.join().unwrap())
            .collect();

        for seq in &stolen {
            prop_assert!(
                seq.windows(2).all(|pair| pair[0] < pair[1]),
                "a thief's haul is strictly increasing (FIFO cold end): {:?}",
                seq
            );
        }
        let mut all: Vec<u32> = owner_got;
        for seq in stolen {
            all.extend(seq);
        }
        all.sort_unstable();
        let expected: Vec<u32> = (0..pushed).collect();
        prop_assert_eq!(all, expected, "every pushed job claimed exactly once");
    }
}
