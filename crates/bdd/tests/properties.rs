//! Property-based tests of the BDD's structural guarantees (paper,
//! Lemma 5.1 + Theorem 5.2) over randomized topologies and thresholds.

use duality_bdd::{dual_bags, Bdd, BddOptions, DualBag};
use duality_congest::{CostLedger, CostModel};
use duality_planar::gen;
use proptest::prelude::*;

fn build(g: &duality_planar::PlanarGraph, threshold: usize) -> Bdd<'_> {
    let cm = CostModel::new(g.num_vertices(), g.diameter());
    let mut ledger = CostLedger::new();
    Bdd::build(
        g,
        &BddOptions {
            leaf_threshold: Some(threshold),
            ..Default::default()
        },
        &cm,
        &mut ledger,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Properties 6 and 7 and the dart partition of Lemma 5.5, on random
    /// triangulated grids with random leaf thresholds.
    #[test]
    fn structural_invariants(
        w in 3usize..8,
        h in 3usize..7,
        seed in 0u64..10_000,
        threshold in 4usize..24,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let bdd = build(&g, threshold);
        prop_assert!(bdd.check_children_cover(), "Property 6");
        prop_assert!(bdd.check_edge_multiplicity(), "Property 7");
        prop_assert!(bdd.check_dart_partition(), "Lemma 5.5");
    }

    /// Lemma 5.3: O(log n) face-parts per bag.
    #[test]
    fn few_face_parts(
        w in 4usize..8,
        h in 4usize..7,
        seed in 0u64..10_000,
        threshold in 4usize..16,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let bdd = build(&g, threshold);
        let bound = 4.0 * (g.num_vertices() as f64).log2() + 4.0;
        for bag in &bdd.bags {
            prop_assert!((bdd.face_parts_of(bag) as f64) <= bound);
        }
    }

    /// Property-12 assembly + F_X separator consistency on every bag.
    #[test]
    fn dual_assembly(
        n in 10usize..40,
        seed in 0u64..10_000,
        threshold in 4usize..16,
    ) {
        let g = gen::apollonian(n, seed).unwrap();
        let bdd = build(&g, threshold);
        for bag in &bdd.bags {
            prop_assert!(dual_bags::check_assembly(&bdd, bag), "bag {}", bag.id);
        }
    }

    /// Non-F_X nodes of every dual bag live wholly inside one child.
    #[test]
    fn non_separator_nodes_have_unique_child(
        w in 4usize..7,
        h in 3usize..6,
        seed in 0u64..10_000,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let bdd = build(&g, 8);
        for bag in bdd.bags.iter().filter(|b| !b.is_leaf()) {
            let dual = DualBag::of_bag(&g, bag);
            let fx: std::collections::HashSet<_> =
                dual_bags::dual_separator(&bdd, bag, &dual).into_iter().collect();
            for &node in &dual.nodes {
                if fx.contains(&node) {
                    continue;
                }
                let holders = bag
                    .children
                    .iter()
                    .filter(|&&c| DualBag::of_bag(&g, &bdd.bags[c]).node_index.contains_key(&node))
                    .count();
                prop_assert!(holders >= 1, "non-separator node lives in a child");
            }
        }
    }

    /// Decomposition depth is logarithmic in the edge count.
    #[test]
    fn logarithmic_depth(
        w in 5usize..9,
        h in 5usize..8,
        seed in 0u64..10_000,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let bdd = build(&g, 6);
        let bound = 3.0 * (g.num_edges() as f64).log2() + 4.0;
        prop_assert!((bdd.depth() as f64) < bound);
    }
}
