//! Dual bags `X*` and dual separators `F_X` (paper, Section 5.1.2).
//!
//! The dual bag of a bag `X` has one node per face **or face-part** of `G`
//! present in `X`. Because all darts of a given face of `G` inside one bag
//! represent the same (possibly disconnected) face-part (Lemma 5.3's
//! counting), nodes are keyed directly by the `G`-face id: the *same* face
//! id appearing in two different bags denotes two different node-parts,
//! which the labeling DDGs later reconnect with zero-weight links.
//!
//! A primal edge `e` of `X` contributes dual arcs iff **both** of its darts
//! are in `X` (darts on holes have no dual — Lemma 5.5); each dart `d` then
//! yields the arc `face(d) → face(rev d)`.

use crate::tree::{Bag, Bdd};
use duality_planar::{Dart, FaceId, PlanarGraph};
use std::collections::HashMap;

/// A dual arc of a dual bag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DualArc {
    /// Index of the source node within [`DualBag::nodes`].
    pub from: usize,
    /// Index of the target node within [`DualBag::nodes`].
    pub to: usize,
    /// The primal dart this arc crosses (carries the arc's weight).
    pub dart: Dart,
}

/// The dual bag `X*` of a bag `X`.
#[derive(Clone, Debug)]
pub struct DualBag {
    /// The bag this dual belongs to.
    pub bag: crate::tree::BagId,
    /// Sorted `G`-face ids of the nodes (faces and face-parts in `X`).
    pub nodes: Vec<FaceId>,
    /// Inverse of [`DualBag::nodes`].
    pub node_index: HashMap<FaceId, usize>,
    /// All dual arcs (two antiparallel arcs per dual edge, one per dart).
    pub arcs: Vec<DualArc>,
}

/// Where an edge of `X` with a dual in `X*` lives with respect to the
/// children of `X`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeLocus {
    /// The dual edge is entirely contained in child `bag.children[i]`.
    Child(usize),
    /// The edge is an `S_X` edge: its dual is in `X*` but in no child
    /// (it lies on holes in both children — Lemma 5.5).
    Separator,
}

impl DualBag {
    /// Builds the dual bag of `bag`.
    pub fn of_bag(g: &PlanarGraph, bag: &Bag) -> Self {
        let mut nodes: Vec<FaceId> = Vec::new();
        let mut arcs_raw: Vec<(FaceId, FaceId, Dart)> = Vec::new();
        for &e in &bag.edges {
            let d = Dart::forward(e);
            if bag.dart_in.contains(&d) && bag.dart_in.contains(&d.rev()) {
                for dd in [d, d.rev()] {
                    let from = g.face_of(dd);
                    let to = g.face_of(dd.rev());
                    nodes.push(from);
                    nodes.push(to);
                    arcs_raw.push((from, to, dd));
                }
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        let node_index: HashMap<FaceId, usize> =
            nodes.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let arcs = arcs_raw
            .into_iter()
            .map(|(from, to, dart)| DualArc {
                from: node_index[&from],
                to: node_index[&to],
                dart,
            })
            .collect();
        DualBag {
            bag: bag.id,
            nodes,
            node_index,
            arcs,
        }
    }

    /// Number of dual nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the dual bag is empty (bag with no two-dart edges).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Out-adjacency lists (`(to, dart)` per node index).
    pub fn adjacency(&self) -> Vec<Vec<(usize, Dart)>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for a in &self.arcs {
            adj[a.from].push((a.to, a.dart));
        }
        adj
    }
}

/// Classifies every dual edge of `X*` (keyed by primal edge id) as living
/// in one child or on the separator (Lemma 5.5 / Property 12: these are the
/// only possibilities).
///
/// # Panics
///
/// Panics if `bag` is a leaf.
pub fn classify_dual_edges(bdd: &Bdd<'_>, bag: &Bag) -> HashMap<usize, EdgeLocus> {
    assert!(!bag.is_leaf(), "edge classification is for non-leaf bags");
    let mut locus = HashMap::new();
    for &e in &bag.edges {
        let d = Dart::forward(e);
        if !(bag.dart_in.contains(&d) && bag.dart_in.contains(&d.rev())) {
            continue; // no dual edge in X*
        }
        let mut found = EdgeLocus::Separator;
        for (ci, &c) in bag.children.iter().enumerate() {
            let child = &bdd.bags[c];
            if child.dart_in.contains(&d) && child.dart_in.contains(&d.rev()) {
                found = EdgeLocus::Child(ci);
                break;
            }
        }
        locus.insert(e, found);
    }
    locus
}

/// Computes the dual separator `F_X` of a non-leaf bag: the nodes of `X*`
/// whose incident dual edges are **not** all contained in a single child
/// bag (Lemma 5.8; this includes the endpoints of `S_X` dual edges and the
/// faces/face-parts split between children).
pub fn dual_separator(bdd: &Bdd<'_>, bag: &Bag, dual: &DualBag) -> Vec<FaceId> {
    let locus = classify_dual_edges(bdd, bag);
    // For each node: the set of loci of its incident edges.
    let mut node_loci: Vec<Option<EdgeLocus>> = vec![None; dual.len()];
    let mut in_fx = vec![false; dual.len()];
    for arc in &dual.arcs {
        let e = arc.dart.edge();
        let l = locus[&e];
        for end in [arc.from, arc.to] {
            match node_loci[end] {
                None => node_loci[end] = Some(l),
                Some(prev) if prev == l => {}
                Some(_) => in_fx[end] = true,
            }
            if l == EdgeLocus::Separator {
                in_fx[end] = true;
            }
        }
    }
    dual.nodes
        .iter()
        .zip(&in_fx)
        .filter(|(_, &b)| b)
        .map(|(&f, _)| f)
        .collect()
}

/// Property-12-style assembly check: the dual arcs of `X*` are exactly the
/// union of the children's dual arcs plus the `S_X` dual arcs, and every
/// path of `X*` that crosses children intersects `F_X` (Lemma 5.15 checked
/// by a reachability argument). Used by tests and the experiment harness.
pub fn check_assembly(bdd: &Bdd<'_>, bag: &Bag) -> bool {
    if bag.is_leaf() {
        return true;
    }
    let dual = DualBag::of_bag(bdd.graph, bag);
    let locus = classify_dual_edges(bdd, bag);
    // (1) Arc sets match: every child dual arc appears in X*, and every X*
    // arc is classified.
    let parent_darts: std::collections::HashSet<Dart> = dual.arcs.iter().map(|a| a.dart).collect();
    for &c in &bag.children {
        let child_dual = DualBag::of_bag(bdd.graph, &bdd.bags[c]);
        for a in &child_dual.arcs {
            if !parent_darts.contains(&a.dart) {
                return false;
            }
            if !matches!(locus.get(&a.dart.edge()), Some(EdgeLocus::Child(_))) {
                return false;
            }
        }
    }
    // (2) Lemma 5.15: removing F_X nodes disconnects arcs of different
    // children (paths crossing children must intersect F_X). We check that
    // no arc endpoint outside F_X touches arcs of two different loci —
    // exactly the F_X definition — so this is consistency of the
    // construction.
    let fx: std::collections::HashSet<FaceId> =
        dual_separator(bdd, bag, &dual).into_iter().collect();
    let mut seen_locus: HashMap<usize, EdgeLocus> = HashMap::new();
    for arc in &dual.arcs {
        let l = locus[&arc.dart.edge()];
        for end in [arc.from, arc.to] {
            if fx.contains(&dual.nodes[end]) {
                continue;
            }
            match seen_locus.entry(end) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(l);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    if *o.get() != l {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Bdd, BddOptions};
    use duality_congest::{CostLedger, CostModel};
    use duality_planar::gen;

    fn build(g: &PlanarGraph, threshold: usize) -> Bdd<'_> {
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        Bdd::build(
            g,
            &BddOptions {
                leaf_threshold: Some(threshold),
                ..Default::default()
            },
            &cm,
            &mut ledger,
        )
    }

    #[test]
    fn root_dual_is_full_dual() {
        let g = gen::diag_grid(5, 5, 1).unwrap();
        let bdd = build(&g, 10);
        let dual = DualBag::of_bag(&g, bdd.root());
        assert_eq!(dual.len(), g.num_faces());
        assert_eq!(dual.arcs.len(), g.num_darts());
    }

    #[test]
    fn dual_arcs_match_dart_duals() {
        let g = gen::grid(6, 6).unwrap();
        let bdd = build(&g, 8);
        for bag in &bdd.bags {
            let dual = DualBag::of_bag(&g, bag);
            for arc in &dual.arcs {
                assert_eq!(dual.nodes[arc.from], g.face_of(arc.dart));
                assert_eq!(dual.nodes[arc.to], g.face_of(arc.dart.rev()));
            }
        }
    }

    #[test]
    fn classification_covers_every_dual_edge() {
        let g = gen::grid(8, 8).unwrap();
        let bdd = build(&g, 10);
        for bag in bdd.bags.iter().filter(|b| !b.is_leaf()) {
            let dual = DualBag::of_bag(&g, bag);
            let locus = classify_dual_edges(&bdd, bag);
            let dual_edges: std::collections::HashSet<usize> =
                dual.arcs.iter().map(|a| a.dart.edge()).collect();
            assert_eq!(locus.len(), dual_edges.len());
            // Separator-classified edges must be real S_X edges.
            let sx: std::collections::HashSet<usize> = bag
                .separator
                .as_ref()
                .unwrap()
                .real_edges()
                .into_iter()
                .collect();
            for (&e, &l) in &locus {
                if l == EdgeLocus::Separator {
                    assert!(sx.contains(&e), "separator dual edge {e} is an S_X edge");
                }
            }
        }
    }

    #[test]
    fn fx_size_is_otilde_d(/* Lemma 5.8 */) {
        let g = gen::diag_grid(9, 9, 4).unwrap();
        let bdd = build(&g, 12);
        let d = g.diameter() as f64;
        let logn = (g.num_vertices() as f64).log2();
        for bag in bdd.bags.iter().filter(|b| !b.is_leaf()) {
            let dual = DualBag::of_bag(&g, bag);
            let fx = dual_separator(&bdd, bag, &dual);
            assert!(
                (fx.len() as f64) <= 4.0 * d * logn + 8.0,
                "bag {}: |F_X| = {} vs D log n = {}",
                bag.id,
                fx.len(),
                d * logn
            );
        }
    }

    #[test]
    fn assembly_property_holds() {
        for g in [
            gen::grid(8, 8).unwrap(),
            gen::diag_grid(7, 6, 2).unwrap(),
            gen::apollonian(50, 9).unwrap(),
        ] {
            let bdd = build(&g, 10);
            for bag in &bdd.bags {
                assert!(check_assembly(&bdd, bag), "bag {}", bag.id);
            }
        }
    }

    #[test]
    fn leaf_duals_are_small() {
        let g = gen::grid(10, 10).unwrap();
        let bdd = build(&g, 12);
        for leaf in bdd.leaves() {
            let dual = DualBag::of_bag(&g, leaf);
            // Property 10: |X*| = O(D log n); with our threshold the bound
            // is the edge count of the leaf.
            assert!(dual.len() <= leaf.edges.len() + 2);
        }
    }
}
