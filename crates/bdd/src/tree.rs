//! The decomposition tree: recursive bag splitting driven by the cycle
//! separator, with dart-membership tracking (Lemma 5.5).

use crate::separator::{find_cycle_separator, Closing};
use duality_congest::{CostLedger, CostModel};
use duality_planar::{Dart, PlanarGraph};
use std::collections::{HashMap, HashSet};

/// Identifier of a bag within a [`Bdd`].
pub type BagId = usize;

/// The closing edge `e_X` of a bag separator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClosingEdge {
    /// `e_X ∈ E(G)`: a real edge closes the cycle (paper Case I — no face
    /// of `G` is partitioned).
    Real(usize),
    /// `e_X ∉ E(G)`: a virtual edge closes the cycle (paper Case II — the
    /// critical face containing the endpoints is split).
    Virtual,
}

/// The separator `S_X` of a non-leaf bag: a fundamental cycle made of two
/// spanning-tree paths plus a closing edge.
#[derive(Clone, Debug)]
pub struct SeparatorInfo {
    /// Vertices of the cycle (the paper's `S_X` vertex set).
    pub vertices: Vec<usize>,
    /// Tree edges of the cycle.
    pub tree_edges: Vec<usize>,
    /// The closing edge.
    pub closing: ClosingEdge,
    /// Endpoints of the closing edge.
    pub endpoints: (usize, usize),
}

impl SeparatorInfo {
    /// All real edges of `S_X` (tree edges plus the closing edge when it is
    /// real). Their duals are the `S_X` dual edges used by `F_X` and the
    /// DDGs.
    pub fn real_edges(&self) -> Vec<usize> {
        let mut out = self.tree_edges.clone();
        if let ClosingEdge::Real(e) = self.closing {
            out.push(e);
        }
        out
    }
}

/// One bag of the decomposition: a connected subgraph of `G` given by its
/// edge set, plus the darts of those edges that are *in* the bag (darts of
/// ancestor-separator edges stay with one side only and lie on holes of the
/// other — Lemma 5.5).
#[derive(Clone, Debug)]
pub struct Bag {
    /// This bag's id.
    pub id: BagId,
    /// Parent bag (`None` at the root).
    pub parent: Option<BagId>,
    /// Children (empty for leaves).
    pub children: Vec<BagId>,
    /// Depth in the decomposition tree (root = 0).
    pub level: usize,
    /// Edge set of the bag, sorted.
    pub edges: Vec<usize>,
    /// Darts of `X` that are not on holes.
    pub dart_in: HashSet<Dart>,
    /// The separator, for non-leaf bags.
    pub separator: Option<SeparatorInfo>,
    /// BFS eccentricity of the bag from its root vertex — the measured tree
    /// depth used for broadcast cost charging.
    pub bfs_depth: usize,
}

impl Bag {
    /// Whether this bag is a leaf of the decomposition.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Sorted vertex set of the bag.
    pub fn vertices(&self, g: &PlanarGraph) -> Vec<usize> {
        let mut vs: Vec<usize> = self
            .edges
            .iter()
            .flat_map(|&e| [g.edge_tail(e), g.edge_head(e)])
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// Options controlling the decomposition.
#[derive(Clone, Copy, Debug)]
pub struct BddOptions {
    /// Bags with at most this many edges become leaves. `None` picks the
    /// paper's `Θ(D)` default (`4·(D+1)`).
    pub leaf_threshold: Option<usize>,
    /// Hard cap on the recursion depth (safety net; the balance guarantee
    /// makes `O(log n)` levels suffice).
    pub max_levels: usize,
}

impl Default for BddOptions {
    fn default() -> Self {
        BddOptions {
            leaf_threshold: None,
            max_levels: 64,
        }
    }
}

/// The Bounded Diameter Decomposition of an embedded planar graph.
///
/// # Example
///
/// ```
/// use duality_bdd::{Bdd, BddOptions};
/// use duality_congest::{CostLedger, CostModel};
/// use duality_planar::gen;
///
/// let g = gen::grid(8, 8).unwrap();
/// let cm = CostModel::new(g.num_vertices(), g.diameter());
/// let mut ledger = CostLedger::new();
/// let bdd = Bdd::build(&g, &BddOptions::default(), &cm, &mut ledger);
/// assert!(bdd.depth() >= 1);
/// // Property 6: every bag is the union of its children.
/// assert!(bdd.check_children_cover());
/// ```
#[derive(Clone, Debug)]
pub struct Bdd<'g> {
    /// The underlying graph.
    pub graph: &'g PlanarGraph,
    /// All bags; index = [`BagId`]; bag 0 is the root.
    pub bags: Vec<Bag>,
    /// Bags grouped by level.
    pub levels: Vec<Vec<BagId>>,
    /// The leaf threshold that was used.
    pub leaf_threshold: usize,
}

/// The smallest leaf threshold the decomposition can terminate with: a
/// leaf must be allowed to hold at least two edges. [`Bdd::build`] clamps
/// smaller requests up to this; strict front-ends (the solver builder)
/// reject them instead.
pub const MIN_LEAF_THRESHOLD: usize = 2;

impl<'g> Bdd<'g> {
    /// Builds the decomposition, charging `Õ(D)` rounds per level
    /// (paper, Lemma 5.1) on `ledger`.
    pub fn build(
        g: &'g PlanarGraph,
        options: &BddOptions,
        cm: &CostModel,
        ledger: &mut CostLedger,
    ) -> Self {
        let threshold = options
            .leaf_threshold
            .unwrap_or(4 * (cm.d + 1))
            .max(MIN_LEAF_THRESHOLD);
        let mut bags: Vec<Bag> = Vec::new();
        let root_edges: Vec<usize> = (0..g.num_edges()).collect();
        let root_darts: HashSet<Dart> = g.darts().collect();
        bags.push(Bag {
            id: 0,
            parent: None,
            children: Vec::new(),
            level: 0,
            edges: root_edges,
            dart_in: root_darts,
            separator: None,
            bfs_depth: 0,
        });

        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(id) = queue.pop_front() {
            let level = bags[id].level;
            let edges = bags[id].edges.clone();
            let edge_set: HashSet<usize> = edges.iter().copied().collect();
            let edge_in = |e: usize| edge_set.contains(&e);

            // Measured bag BFS depth (for broadcast charging) from the
            // minimum vertex of the bag.
            let root_vertex = edges
                .iter()
                .map(|&e| g.edge_tail(e).min(g.edge_head(e)))
                .min()
                .expect("bags are nonempty");
            let (parent_dart, depth) = g.bfs_restricted(root_vertex, &edge_in);
            bags[id].bfs_depth = depth
                .iter()
                .copied()
                .filter(|&d| d != usize::MAX)
                .max()
                .unwrap_or(0);

            if edges.len() <= threshold || level + 1 >= options.max_levels {
                continue; // leaf
            }

            let tree_edges: HashSet<usize> =
                parent_dart.iter().flatten().map(|d| d.edge()).collect();
            let Some(sep) = find_cycle_separator(g, &edges, &edge_in, &|e| tree_edges.contains(&e))
            else {
                continue; // unsplittable: leaf
            };

            // Fundamental cycle: tree paths from both endpoints to their LCA.
            let (u, v) = sep.endpoints;
            let (cycle_vertices, cycle_tree_edges) = tree_path(g, &parent_dart, &depth, u, v);
            let closing = match sep.closing {
                Closing::Real(e) => ClosingEdge::Real(e),
                Closing::Virtual { .. } => ClosingEdge::Virtual,
            };

            // Children: connected components of each side's edge set.
            // An edge belongs to side s when one of its darts lies in a
            // triangle of side s; separator-cycle edges have darts on both
            // sides and therefore join both children (Property 7: each edge
            // is in at most two bags per level).
            // Only darts in `dart_in(X)` decide: a hole edge (one in-dart,
            // i.e. an ancestor-separator edge — Lemma 5.5) goes to exactly
            // one child, which keeps every edge in at most two bags per
            // level (Property 7).
            let mut side_edges: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
            for &e in &edges {
                let mut sides = [false, false];
                for d in [Dart::forward(e), Dart::backward(e)] {
                    if bags[id].dart_in.contains(&d) {
                        sides[sep.dart_side[&d] as usize] = true;
                    }
                }
                debug_assert!(
                    sides[0] || sides[1],
                    "every bag edge has at least one in-dart"
                );
                for (s, &hit) in sides.iter().enumerate() {
                    if hit {
                        side_edges[s].push(e);
                    }
                }
            }

            let mut new_children = Vec::new();
            for (s, side) in side_edges.iter().enumerate() {
                for comp in edge_components(g, side) {
                    let mut dart_in = HashSet::new();
                    for &e in &comp {
                        for d in [Dart::forward(e), Dart::backward(e)] {
                            if bags[id].dart_in.contains(&d) && sep.dart_side[&d] as usize == s {
                                dart_in.insert(d);
                            }
                        }
                    }
                    let child_id = bags.len();
                    bags.push(Bag {
                        id: child_id,
                        parent: Some(id),
                        children: Vec::new(),
                        level: level + 1,
                        edges: comp,
                        dart_in,
                        separator: None,
                        bfs_depth: 0,
                    });
                    new_children.push(child_id);
                }
            }

            // Progress guard: if a child failed to shrink, keep the bag as a
            // leaf instead of recursing forever.
            let shrunk = new_children
                .iter()
                .all(|&c| bags[c].edges.len() < edges.len());
            if new_children.len() < 2 || !shrunk {
                bags.truncate(bags.len() - new_children.len());
                continue;
            }
            bags[id].separator = Some(SeparatorInfo {
                vertices: cycle_vertices,
                tree_edges: cycle_tree_edges,
                closing,
                endpoints: (u, v),
            });
            bags[id].children = new_children.clone();
            queue.extend(new_children);
        }

        // Levels.
        let depth = bags.iter().map(|b| b.level).max().unwrap_or(0) + 1;
        let mut levels = vec![Vec::new(); depth];
        for b in &bags {
            levels[b.level].push(b.id);
        }

        // Charge: Õ(D) per level for separator computation + child/bag and
        // face/face-part identification (paper, Lemma 5.1 + Theorem 5.2).
        for _ in 0..depth {
            ledger.charge("bdd-build", cm.bdd_level());
        }
        ledger.charge("bdd-face-ids", cm.dual_part_wise_aggregation());

        Bdd {
            graph: g,
            bags,
            levels,
            leaf_threshold: threshold,
        }
    }

    /// Number of levels of the decomposition.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The root bag.
    pub fn root(&self) -> &Bag {
        &self.bags[0]
    }

    /// Iterator over leaf bags.
    pub fn leaves(&self) -> impl Iterator<Item = &Bag> {
        self.bags.iter().filter(|b| b.is_leaf())
    }

    /// Property 6: every non-leaf bag is the union of its children.
    pub fn check_children_cover(&self) -> bool {
        for bag in &self.bags {
            if bag.is_leaf() {
                continue;
            }
            let mut union: HashSet<usize> = HashSet::new();
            for &c in &bag.children {
                union.extend(self.bags[c].edges.iter().copied());
            }
            let own: HashSet<usize> = bag.edges.iter().copied().collect();
            if union != own {
                return false;
            }
        }
        true
    }

    /// Property 7: each edge appears in at most two bags of the same level.
    pub fn check_edge_multiplicity(&self) -> bool {
        for level in &self.levels {
            let mut count: HashMap<usize, usize> = HashMap::new();
            for &b in level {
                for &e in &self.bags[b].edges {
                    *count.entry(e).or_default() += 1;
                }
            }
            if count.values().any(|&c| c > 2) {
                return false;
            }
        }
        true
    }

    /// Lemma 5.5: each dart is in exactly one bag (`dart_in`) per level,
    /// *modulo* darts whose bags became leaves at earlier levels.
    pub fn check_dart_partition(&self) -> bool {
        for level in &self.levels {
            let mut seen: HashSet<Dart> = HashSet::new();
            for &b in level {
                for &d in &self.bags[b].dart_in {
                    if !seen.insert(d) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Counts the *face-parts* of a bag: faces of `G` whose dart set in the
    /// bag is a strict nonempty subset of their darts in `G` (Lemma 5.3:
    /// `O(log n)` per bag).
    pub fn face_parts_of(&self, bag: &Bag) -> usize {
        let mut darts_of_face: HashMap<u32, usize> = HashMap::new();
        for &d in &bag.dart_in {
            *darts_of_face.entry(self.graph.face_of(d).0).or_default() += 1;
        }
        darts_of_face
            .iter()
            .filter(|(&f, &cnt)| cnt < self.graph.face_darts(duality_planar::FaceId(f)).len())
            .count()
    }
}

/// Tree path between `u` and `v` via BFS parent darts; returns the cycle
/// vertex set (including both endpoints) and the tree edges used.
fn tree_path(
    g: &PlanarGraph,
    parent: &[Option<Dart>],
    depth: &[usize],
    u: usize,
    v: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut a = u;
    let mut b = v;
    let mut edges = Vec::new();
    let mut verts_a = vec![a];
    let mut verts_b = vec![b];
    while depth[a] > depth[b] {
        let d = parent[a].expect("non-root has parent");
        edges.push(d.edge());
        a = g.tail(d);
        verts_a.push(a);
    }
    while depth[b] > depth[a] {
        let d = parent[b].expect("non-root has parent");
        edges.push(d.edge());
        b = g.tail(d);
        verts_b.push(b);
    }
    while a != b {
        let da = parent[a].expect("non-root has parent");
        let db = parent[b].expect("non-root has parent");
        edges.push(da.edge());
        edges.push(db.edge());
        a = g.tail(da);
        b = g.tail(db);
        verts_a.push(a);
        verts_b.push(b);
    }
    verts_b.pop(); // LCA already in verts_a
    verts_a.extend(verts_b.into_iter().rev());
    verts_a.dedup();
    (verts_a, edges)
}

/// Connected components of the subgraph induced by `edges` (components as
/// sorted edge lists).
fn edge_components(g: &PlanarGraph, edges: &[usize]) -> Vec<Vec<usize>> {
    use duality_planar::util::DisjointSet;
    if edges.is_empty() {
        return Vec::new();
    }
    // Union over shared endpoints, with vertex ids compressed.
    let mut vid: HashMap<usize, usize> = HashMap::new();
    for &e in edges {
        for v in [g.edge_tail(e), g.edge_head(e)] {
            let next = vid.len();
            vid.entry(v).or_insert(next);
        }
    }
    let mut dsu = DisjointSet::new(vid.len());
    for &e in edges {
        dsu.union(vid[&g.edge_tail(e)], vid[&g.edge_head(e)]);
    }
    let mut comps: HashMap<usize, Vec<usize>> = HashMap::new();
    for &e in edges {
        let r = dsu.find(vid[&g.edge_tail(e)]);
        comps.entry(r).or_default().push(e);
    }
    let mut out: Vec<Vec<usize>> = comps.into_values().collect();
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    fn build(g: &PlanarGraph, threshold: usize) -> (Bdd<'_>, CostLedger) {
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let bdd = Bdd::build(
            g,
            &BddOptions {
                leaf_threshold: Some(threshold),
                ..Default::default()
            },
            &cm,
            &mut ledger,
        );
        (bdd, ledger)
    }

    #[test]
    fn structural_properties_on_grid() {
        let g = gen::grid(9, 9).unwrap();
        let (bdd, ledger) = build(&g, 12);
        assert!(bdd.depth() >= 3);
        assert!(bdd.check_children_cover(), "Property 6");
        assert!(bdd.check_edge_multiplicity(), "Property 7");
        assert!(bdd.check_dart_partition(), "Lemma 5.5");
        assert!(ledger.total() > 0);
        // Leaves can exceed the soft threshold when a bag becomes
        // unsplittable (children would not shrink below the separator
        // size); they stay within a small constant factor.
        for leaf in bdd.leaves() {
            assert!(leaf.edges.len() <= 4 * bdd.leaf_threshold.max(12));
        }
    }

    #[test]
    fn structural_properties_on_triangulations() {
        for seed in [1u64, 2] {
            let g = gen::diag_grid(7, 7, seed).unwrap();
            let (bdd, _) = build(&g, 10);
            assert!(bdd.check_children_cover());
            assert!(bdd.check_edge_multiplicity());
            assert!(bdd.check_dart_partition());
        }
        let g = gen::apollonian(60, 5).unwrap();
        let (bdd, _) = build(&g, 10);
        assert!(bdd.check_children_cover());
        assert!(bdd.check_edge_multiplicity());
        assert!(bdd.check_dart_partition());
    }

    #[test]
    fn depth_is_logarithmic() {
        let g = gen::grid(12, 12).unwrap();
        let (bdd, _) = build(&g, 8);
        let n = g.num_edges() as f64;
        // Balance 2/3 per level ⇒ depth ≤ log_{3/2}(m) + O(1); allow slack 3x.
        let bound = 3.0 * n.log2() + 4.0;
        assert!(
            (bdd.depth() as f64) < bound,
            "depth {} vs bound {bound}",
            bdd.depth()
        );
    }

    #[test]
    fn face_parts_are_few() {
        let g = gen::diag_grid(8, 8, 3).unwrap();
        let (bdd, _) = build(&g, 10);
        let logn = (g.num_vertices() as f64).log2();
        for bag in &bdd.bags {
            let parts = bdd.face_parts_of(bag);
            assert!(
                (parts as f64) <= 4.0 * logn + 4.0,
                "bag {} at level {} has {} face-parts (log n = {logn:.1})",
                bag.id,
                bag.level,
                parts
            );
        }
    }

    #[test]
    fn small_graph_is_single_leaf() {
        let g = gen::cycle(4).unwrap();
        let (bdd, _) = build(&g, 10);
        assert_eq!(bdd.depth(), 1);
        assert!(bdd.root().is_leaf());
    }

    #[test]
    fn separator_is_tree_paths_plus_closing_edge() {
        let g = gen::grid(10, 10).unwrap();
        let (bdd, _) = build(&g, 12);
        for bag in bdd.bags.iter().filter(|b| !b.is_leaf()) {
            let sep = bag.separator.as_ref().unwrap();
            assert!(!sep.vertices.is_empty());
            // Every separator tree edge is an edge of the bag.
            let edge_set: std::collections::HashSet<usize> = bag.edges.iter().copied().collect();
            for e in &sep.tree_edges {
                assert!(edge_set.contains(e));
            }
            if let ClosingEdge::Real(e) = sep.closing {
                assert!(edge_set.contains(&e));
            }
            // Endpoints are on the cycle.
            assert!(sep.vertices.contains(&sep.endpoints.0));
            assert!(sep.vertices.contains(&sep.endpoints.1));
        }
    }

    #[test]
    fn children_are_connected_subgraphs() {
        let g = gen::diag_grid(8, 6, 9).unwrap();
        let (bdd, _) = build(&g, 10);
        for bag in &bdd.bags {
            let comps = edge_components(&g, &bag.edges);
            assert_eq!(comps.len(), 1, "bag {} is connected", bag.id);
        }
    }

    #[test]
    fn bfs_depth_recorded() {
        let g = gen::grid(6, 6).unwrap();
        let (bdd, _) = build(&g, 8);
        assert!(bdd.root().bfs_depth >= g.diameter() / 2);
        for bag in &bdd.bags {
            assert!(bag.bfs_depth <= g.num_vertices());
        }
    }
}
