//! Cycle-separator search inside one bag: Lipton–Tarjan fundamental cycles
//! over a fan-triangulated bag, via interdigitating trees.
//!
//! Given a connected bag (an edge subset of the embedded graph `G`) and a
//! BFS spanning tree of it, every *non-tree* edge of the fan-triangulated
//! bag — a real non-tree edge of the bag, or a virtual fan diagonal drawn
//! inside a bag face — closes a fundamental cycle with the tree: two tree
//! paths plus the closing edge, exactly the separator shape `S_X` the paper
//! analyses (a virtual closing edge is the paper's `e_X ∉ E(G)`).
//!
//! The duals of the non-tree edges form a spanning tree of the triangulated
//! bag's dual (the interdigitating-trees theorem), so the two sides of each
//! candidate's fundamental cycle are the two components of that co-tree
//! minus the candidate arc; subtree sizes give all balances in linear time.

use duality_planar::{Dart, PlanarGraph};

/// One face of the bag subgraph: its boundary walk (orbit of the restricted
/// face permutation).
#[derive(Clone, Debug)]
pub struct SubFace {
    /// Boundary darts, in walk order.
    pub walk: Vec<Dart>,
}

/// Computes the faces of the bag subgraph consisting of `edges`
/// (`edge_in(e)` must agree with membership in `edges`).
///
/// Every dart of every bag edge lies on exactly one sub-face; sub-faces
/// whose darts all belong to one face of `G` are whole faces of `G`
/// (Section 5.1), the rest cover face-parts and holes.
pub fn subgraph_faces(
    g: &PlanarGraph,
    edges: &[usize],
    edge_in: &dyn Fn(usize) -> bool,
) -> Vec<SubFace> {
    let mut seen: std::collections::HashSet<Dart> = std::collections::HashSet::new();
    let mut faces = Vec::new();
    for &e in edges {
        for d0 in [Dart::forward(e), Dart::backward(e)] {
            if seen.contains(&d0) {
                continue;
            }
            let mut walk = Vec::new();
            let mut d = d0;
            loop {
                seen.insert(d);
                walk.push(d);
                d = g.phi_restricted(d, edge_in);
                if d == d0 {
                    break;
                }
            }
            faces.push(SubFace { walk });
        }
    }
    faces
}

/// The closing edge of a chosen fundamental cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Closing {
    /// A real non-tree edge of the bag.
    Real(usize),
    /// A virtual fan diagonal: `(subface index, walk position i)` joining
    /// the fan anchor `tail(walk[0])` to `tail(walk[i])`.
    Virtual {
        /// Index into the `subgraph_faces` result.
        subface: usize,
        /// Walk position of the far endpoint.
        position: usize,
    },
}

/// Result of the separator search.
#[derive(Clone, Debug)]
pub struct CycleSeparator {
    /// The closing edge (real ⇒ `e_X ∈ E(G)`, virtual ⇒ the paper's
    /// critical-face case).
    pub closing: Closing,
    /// Endpoints `(u, v)` of the closing edge.
    pub endpoints: (usize, usize),
    /// Side (0/1) of every dart of the bag, keyed by dart index — the side
    /// of the triangle containing the dart in the triangulated bag.
    pub dart_side: std::collections::HashMap<Dart, u8>,
    /// Number of triangles on each side.
    pub side_triangles: [usize; 2],
    /// Total triangles.
    pub total_triangles: usize,
}

struct TriArc {
    a: usize,
    b: usize,
    closing: Closing,
    is_tree: bool,
}

/// Searches for the most balanced fundamental-cycle separator of the bag.
///
/// `in_tree(e)` marks the spanning-tree edges of the bag. Returns `None`
/// when the triangulated bag has a single face (nothing to separate — the
/// bag is a single edge).
pub fn find_cycle_separator(
    g: &PlanarGraph,
    edges: &[usize],
    edge_in: &dyn Fn(usize) -> bool,
    in_tree: &dyn Fn(usize) -> bool,
) -> Option<CycleSeparator> {
    let faces = subgraph_faces(g, edges, edge_in);

    // Triangle ids: sub-face `fi` with walk length k owns max(1, k-2)
    // triangles starting at base[fi]; the dart at walk position i lies in
    // triangle clamp(i, 1, k-2) - 1 of the fan (positions 0 and k-1 share
    // the first and last triangle respectively).
    let mut base = Vec::with_capacity(faces.len());
    let mut total = 0usize;
    for f in &faces {
        base.push(total);
        total += f.walk.len().saturating_sub(2).max(1);
    }
    if total <= 1 {
        return None;
    }
    let tri_of = |fi: usize, i: usize| -> usize {
        let k = faces[fi].walk.len();
        if k <= 3 {
            base[fi]
        } else {
            base[fi] + i.clamp(1, k - 2) - 1
        }
    };

    // Where does each dart sit? (sub-face, walk position)
    let mut pos_of: std::collections::HashMap<Dart, (usize, usize)> =
        std::collections::HashMap::new();
    for (fi, f) in faces.iter().enumerate() {
        for (i, &d) in f.walk.iter().enumerate() {
            pos_of.insert(d, (fi, i));
        }
    }

    // Arcs of the triangulated dual.
    let mut arcs = Vec::new();
    for &e in edges {
        let (fa, ia) = pos_of[&Dart::forward(e)];
        let (fb, ib) = pos_of[&Dart::backward(e)];
        arcs.push(TriArc {
            a: tri_of(fa, ia),
            b: tri_of(fb, ib),
            closing: Closing::Real(e),
            is_tree: in_tree(e),
        });
    }
    for (fi, f) in faces.iter().enumerate() {
        let k = f.walk.len();
        if k < 4 {
            continue;
        }
        for i in 2..=k - 2 {
            arcs.push(TriArc {
                a: tri_of(fi, i - 1),
                b: tri_of(fi, i),
                closing: Closing::Virtual {
                    subface: fi,
                    position: i,
                },
                is_tree: false,
            });
        }
    }

    // Co-tree: BFS over non-tree arcs. The interdigitating-trees theorem
    // says they span all triangles.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (ai, arc) in arcs.iter().enumerate() {
        if !arc.is_tree {
            adj[arc.a].push(ai);
            adj[arc.b].push(ai);
        }
    }
    let mut parent_arc: Vec<Option<usize>> = vec![None; total];
    let mut order = Vec::with_capacity(total);
    let mut visited = vec![false; total];
    visited[0] = true;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(t) = queue.pop_front() {
        order.push(t);
        for &ai in &adj[t] {
            let arc = &arcs[ai];
            let other = if arc.a == t { arc.b } else { arc.a };
            if !visited[other] {
                visited[other] = true;
                parent_arc[other] = Some(ai);
                queue.push_back(other);
            }
        }
    }
    if visited.iter().any(|&v| !v) {
        // Disconnected triangulated dual: cannot happen for connected bags;
        // bail out so the caller turns the bag into a leaf.
        return None;
    }

    // Subtree sizes in the rooted co-tree.
    let mut size = vec![1usize; total];
    for &t in order.iter().rev() {
        if let Some(ai) = parent_arc[t] {
            let arc = &arcs[ai];
            let p = if arc.a == t { arc.b } else { arc.a };
            size[p] += size[t];
        }
    }

    // Best co-tree arc: minimize the larger side; prefer real closing edges
    // on ties (they avoid face splitting — paper Case I of Lemma 5.3).
    let mut best: Option<(usize, usize, usize)> = None; // (max_side, virtual?, tri with subtree)
    let mut best_arc = usize::MAX;
    for (t, &pa) in parent_arc.iter().enumerate() {
        let Some(ai) = pa else { continue };
        let s = size[t];
        let mx = s.max(total - s);
        let is_virtual = usize::from(matches!(arcs[ai].closing, Closing::Virtual { .. }));
        let key = (mx, is_virtual, t);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
            best_arc = ai;
        }
    }
    let (_, _, sub_root) = best?;
    let chosen = &arcs[best_arc];

    // Side assignment: triangles in the subtree under the chosen arc are
    // side 1, the rest side 0.
    let mut side = vec![0u8; total];
    // Recompute subtree membership of `sub_root` by a BFS in the co-tree
    // that never crosses the chosen arc.
    let mut stack = vec![sub_root];
    side[sub_root] = 1;
    while let Some(t) = stack.pop() {
        for &ai in &adj[t] {
            if ai == best_arc {
                continue;
            }
            let arc = &arcs[ai];
            let other = if arc.a == t { arc.b } else { arc.a };
            // Only descend along co-tree edges (parent links) to stay in the
            // subtree.
            if parent_arc[other] == Some(ai) && side[other] == 0 {
                side[other] = 1;
                stack.push(other);
            }
        }
    }
    let side1: usize = side.iter().map(|&s| s as usize).sum();

    let endpoints = match chosen.closing {
        Closing::Real(e) => (g.edge_tail(e), g.edge_head(e)),
        Closing::Virtual { subface, position } => (
            g.tail(faces[subface].walk[0]),
            g.tail(faces[subface].walk[position]),
        ),
    };

    let mut dart_side = std::collections::HashMap::new();
    for (fi, f) in faces.iter().enumerate() {
        for (i, &d) in f.walk.iter().enumerate() {
            dart_side.insert(d, side[tri_of(fi, i)]);
        }
    }

    Some(CycleSeparator {
        closing: chosen.closing,
        endpoints,
        dart_side,
        side_triangles: [total - side1, side1],
        total_triangles: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    fn all_edges(g: &PlanarGraph) -> Vec<usize> {
        (0..g.num_edges()).collect()
    }

    #[test]
    fn subgraph_faces_of_full_graph_match() {
        let g = gen::diag_grid(4, 4, 1).unwrap();
        let edges = all_edges(&g);
        let faces = subgraph_faces(&g, &edges, &|_| true);
        assert_eq!(faces.len(), g.num_faces());
        let total: usize = faces.iter().map(|f| f.walk.len()).sum();
        assert_eq!(total, g.num_darts());
    }

    #[test]
    fn subgraph_faces_of_tree_is_single_walk() {
        let g = gen::grid(4, 4).unwrap();
        // Restrict to a spanning tree (BFS from 0).
        let (parent, _) = g.bfs(0);
        let tree: std::collections::HashSet<usize> =
            parent.iter().flatten().map(|d| d.edge()).collect();
        let edges: Vec<usize> = tree.iter().copied().collect();
        let faces = subgraph_faces(&g, &edges, &|e| tree.contains(&e));
        assert_eq!(faces.len(), 1, "a tree has one face");
        assert_eq!(faces[0].walk.len(), 2 * edges.len());
    }

    fn bfs_tree_edges(g: &PlanarGraph) -> std::collections::HashSet<usize> {
        let (parent, _) = g.bfs(0);
        parent.iter().flatten().map(|d| d.edge()).collect()
    }

    #[test]
    fn separator_is_balanced_on_grid() {
        let g = gen::grid(8, 8).unwrap();
        let edges = all_edges(&g);
        let tree = bfs_tree_edges(&g);
        let sep = find_cycle_separator(&g, &edges, &|_| true, &|e| tree.contains(&e)).unwrap();
        let mx = sep.side_triangles[0].max(sep.side_triangles[1]);
        assert!(
            3 * mx <= 2 * sep.total_triangles + 3,
            "Lipton–Tarjan balance: {:?} of {}",
            sep.side_triangles,
            sep.total_triangles
        );
    }

    #[test]
    fn separator_on_tree_uses_virtual_edge() {
        let g = gen::path(8).unwrap();
        let edges = all_edges(&g);
        // All edges are tree edges.
        let sep = find_cycle_separator(&g, &edges, &|_| true, &|_| true).unwrap();
        assert!(matches!(sep.closing, Closing::Virtual { .. }));
        let (u, v) = sep.endpoints;
        assert_ne!(u, v);
    }

    #[test]
    fn single_edge_bag_has_no_separator() {
        let g = gen::path(2).unwrap();
        let sep = find_cycle_separator(&g, &[0], &|e| e == 0, &|_| true);
        assert!(sep.is_none());
    }

    #[test]
    fn every_dart_gets_a_side() {
        let g = gen::diag_grid(5, 5, 2).unwrap();
        let edges = all_edges(&g);
        let tree = bfs_tree_edges(&g);
        let sep = find_cycle_separator(&g, &edges, &|_| true, &|e| tree.contains(&e)).unwrap();
        assert_eq!(sep.dart_side.len(), g.num_darts());
        assert!(sep.side_triangles[0] > 0 && sep.side_triangles[1] > 0);
    }

    #[test]
    fn apollonian_separator_balance() {
        let g = gen::apollonian(40, 7).unwrap();
        let edges = all_edges(&g);
        let tree = bfs_tree_edges(&g);
        let sep = find_cycle_separator(&g, &edges, &|_| true, &|e| tree.contains(&e)).unwrap();
        let mx = sep.side_triangles[0].max(sep.side_triangles[1]);
        assert!(3 * mx <= 2 * sep.total_triangles + 3);
    }
}
