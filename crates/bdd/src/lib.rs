//! Bounded Diameter Decomposition (BDD) with the paper's *dual lens*.
//!
//! The BDD (Li–Parter, extended by Section 5.1 of the paper) is a rooted
//! decomposition tree whose *bags* are connected subgraphs of the planar
//! graph `G`. Every non-leaf bag `X` is split by a cycle separator `S_X` —
//! two paths of a spanning tree closed by one extra edge `e_X` that is
//! *virtual* (not an edge of `G`) whenever no real edge closes a balanced
//! cycle. This crate builds the decomposition and the structures the dual
//! labeling scheme needs:
//!
//! * per-bag **dart membership** (`dart_in`): the darts of `X` that are not
//!   on holes (Lemma 5.5: each dart belongs to exactly one bag per level);
//! * **dual bags** `X*` ([`DualBag`]): one node per face *or face-part* of
//!   `G` present in `X`, one dual arc per dart of an edge with both darts in
//!   `X`;
//! * **dual separators** `F_X` ([`dual_bags::dual_separator`]): the nodes whose
//!   incident dual edges are not contained in a single child bag
//!   (Lemma 5.8) — the interface the distance labels are built on.
//!
//! The separator search is the classical Lipton–Tarjan fundamental-cycle
//! argument run on a fan-triangulation of each bag face, via interdigitating
//! primal/dual trees (see [`separator`]); this reproduces exactly the
//! "two tree paths + possibly-virtual closing edge" shape the paper's
//! analysis relies on (`DESIGN.md` §3 documents this substitution for the
//! randomized Ghaffari–Parter construction).

pub mod dual_bags;
pub mod separator;
mod tree;

pub use dual_bags::DualBag;
pub use tree::{Bag, BagId, Bdd, BddOptions, ClosingEdge, SeparatorInfo, MIN_LEAF_THRESHOLD};
