//! Chrome-trace export: profiling spans → a `trace.json` that
//! chrome://tracing and Perfetto open directly.
//!
//! The telemetry spine aggregates phase spans into per-phase totals —
//! the right shape for gauges and regression rows, the wrong shape for
//! "where did *this* build spend its time". This module keeps the
//! individual spans: [`capture_trace`] drives a lab spec's scenarios
//! through a telemetry-wired engine, drains the raw rings, and flattens
//! both span kinds into [`TraceSlice`]s — substrate build phases in one
//! category, job lifecycles in another — which [`to_chrome_json`]
//! serializes as complete-duration (`"ph": "X"`) events in the Trace
//! Event Format. Timestamps are µs since engine start, the unit the
//! format expects; `pid` carries the shard and `tid` the worker, so the
//! viewer's track layout *is* the fleet layout.
//!
//! [`parse_chrome_json`] reads the document back (through the lab's own
//! [`Json`] reader), so the writer is covered by a round-trip test
//! rather than by eyeballing a browser.

use crate::envelope::Json;
use crate::error::LabError;
use crate::spec::LabSpec;
use duality_service::{AdmissionPolicy, PhaseSpan, ServiceEngine, SpanRecord, SpanSink};
use duality_telemetry::RingSink;
use duality_workload::WorkloadError;
use std::sync::Arc;

/// One complete-duration slice of the exported trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSlice {
    /// Event name: a phase (`embed`, `bdd`, …) or a query kind.
    pub name: String,
    /// Category: `substrate` for build phases, `job` for lifecycles.
    pub cat: String,
    /// Start, µs since engine start.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Process track — the pool shard.
    pub pid: u64,
    /// Thread track — the worker.
    pub tid: u64,
}

impl TraceSlice {
    fn of_phase(span: &PhaseSpan) -> TraceSlice {
        TraceSlice {
            name: span.phase.clone(),
            cat: "substrate".into(),
            ts_us: span.finished_us.saturating_sub(span.us),
            dur_us: span.us,
            pid: span.shard as u64,
            tid: span.worker as u64,
        }
    }

    fn of_job(span: &SpanRecord) -> TraceSlice {
        let start = span.started_us.unwrap_or(span.submitted_us);
        TraceSlice {
            name: span.query.to_string(),
            cat: "job".into(),
            ts_us: start,
            dur_us: span.finished_us.saturating_sub(start),
            pid: span.shard as u64,
            tid: span.worker.unwrap_or(0) as u64,
        }
    }
}

/// Drives every scenario the spec keeps (its first kept grid cell)
/// through a telemetry-wired engine and returns the raw spans as
/// slices, substrate phases first.
///
/// # Errors
///
/// [`LabError::Schema`] when the spec fails validation;
/// [`LabError::Workload`] when recording, materialization, or the
/// engine fails.
pub fn capture_trace(
    spec: &LabSpec,
    smoke: bool,
    seed: Option<u64>,
) -> Result<Vec<TraceSlice>, LabError> {
    spec.validate()?;
    let seed = seed.unwrap_or(spec.seed);
    let cell = spec.run_cells(smoke)[0];
    let mut slices = Vec::new();
    for scenario_ref in spec.run_scenarios(smoke) {
        let trace = scenario_ref.resolve(seed)?.record()?;
        let jobs = trace.materialize()?;
        // The raw rings, not a Telemetry handle: polling would fold the
        // spans into aggregates and lose the individual slices.
        let ring = Arc::new(RingSink::new(jobs.len() * 8 + 64));
        let engine = ServiceEngine::builder()
            .workers(cell.workers)
            .shards(cell.shards)
            .queue_capacity(jobs.len().max(16))
            .admission(AdmissionPolicy::Block)
            .span_sink(Arc::clone(&ring) as Arc<dyn SpanSink>)
            .build()
            .map_err(|e| LabError::Workload(WorkloadError::from(e)))?;
        for job in &jobs {
            let ticket = engine
                .submit(&job.instance, job.query)
                .map_err(|e| LabError::Workload(WorkloadError::Submit(e)))?;
            let _ = ticket.wait();
        }
        engine.shutdown();
        slices.extend(ring.drain_phases().iter().map(TraceSlice::of_phase));
        slices.extend(ring.drain().iter().map(TraceSlice::of_job));
    }
    Ok(slices)
}

/// Serializes slices as a Trace Event Format document — the layout
/// chrome://tracing and Perfetto load without conversion.
pub fn to_chrome_json(slices: &[TraceSlice]) -> String {
    let events: Vec<String> = slices
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": {}, \"tid\": {}}}",
                json_string(&s.name),
                json_string(&s.cat),
                s.ts_us,
                s.dur_us,
                s.pid,
                s.tid
            )
        })
        .collect();
    format!(
        "{{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n{}\n  ]\n}}\n",
        events.join(",\n")
    )
}

/// Parses a document [`to_chrome_json`] wrote (round-trip validation;
/// also accepts any Trace Event Format file of `"ph": "X"` events).
///
/// # Errors
///
/// [`LabError::Parse`] on malformed JSON, missing fields, or an event
/// phase other than `"X"`.
pub fn parse_chrome_json(text: &str) -> Result<Vec<TraceSlice>, LabError> {
    let fail = |reason: String| LabError::Parse { line: 0, reason };
    let doc = Json::parse(text).map_err(&fail)?;
    let mut slices = Vec::new();
    for event in doc.arr("traceEvents").map_err(&fail)? {
        let ph = event.str("ph").map_err(&fail)?;
        if ph != "X" {
            return Err(fail(format!("unsupported event phase `{ph}` (want X)")));
        }
        slices.push(TraceSlice {
            name: event.str("name").map_err(&fail)?.to_string(),
            cat: event.str("cat").map_err(&fail)?.to_string(),
            ts_us: event.num("ts").map_err(&fail)?.round() as u64,
            dur_us: event.num("dur").map_err(&fail)?.round() as u64,
            pid: event.num("pid").map_err(&fail)?.round() as u64,
            tid: event.num("tid").map_err(&fail)?.round() as u64,
        });
    }
    Ok(slices)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GridCell, RunMode, ScenarioRef};

    fn spec() -> LabSpec {
        LabSpec {
            name: "TRACE".into(),
            seed: 5,
            mode: RunMode::Replay,
            cells: vec![GridCell {
                workers: 2,
                shards: 2,
                smoke: true,
            }],
            scenarios: vec![ScenarioRef::Preset {
                name: "steady-state".into(),
                smoke: true,
            }],
        }
    }

    #[test]
    fn captured_traces_round_trip_through_chrome_json() {
        let slices = capture_trace(&spec(), false, None).unwrap();
        assert!(
            slices.iter().any(|s| s.cat == "substrate"),
            "substrate builds must leave phase slices"
        );
        assert!(
            slices.iter().any(|s| s.cat == "job"),
            "jobs must leave lifecycle slices"
        );
        assert!(
            slices.iter().any(|s| s.name == "embed"),
            "the embed phase is always charged first"
        );
        let text = to_chrome_json(&slices);
        let parsed = parse_chrome_json(&text).unwrap();
        assert_eq!(
            parsed, slices,
            "the writer and reader agree slice for slice"
        );
    }

    #[test]
    fn foreign_phases_and_malformed_documents_are_refused() {
        assert!(parse_chrome_json("").is_err());
        assert!(parse_chrome_json("{\"traceEvents\": [{\"ph\": \"B\"}]}").is_err());
        assert!(parse_chrome_json("{\"other\": []}").is_err());
    }
}
