//! The experiment subsystem: declarative specs in, gated evidence out.
//!
//! The layers below produce behavior — solve ([`duality_core`]), serve
//! ([`duality_service`]), generate traffic ([`duality_workload`]),
//! operate ([`duality-control`](https://docs.rs/duality-control)). This
//! crate turns that behavior into *evidence* with a closed loop:
//!
//! * **[`spec`]** — a [`LabSpec`] is a versioned, byte-stable JSONL
//!   document declaring what to measure: scenarios (preset names or
//!   inline tenant/mutation/mix descriptions), a worker × shard sweep
//!   grid, the run mode, and smoke scaling. Unknown schema versions and
//!   line kinds are refused.
//! * **[`runner`]** — [`runner::run_spec`] executes a spec: replay mode
//!   reproduces the S5 bit-for-bit-vs-serial sweep; ramp mode runs the
//!   saturation probe ([`duality_workload::ramp()`]) and reports
//!   `max-sustainable-jps` plus knee-of-curve latency per cell;
//!   autopilot mode serves the trace phase by phase through a
//!   telemetry-wired reconciler with closed-loop worker scaling and
//!   compares against a static fleet of the surge size. Replay and ramp
//!   derive `scaling-efficiency` so flat worker scaling shows up in
//!   the artifact itself.
//! * **[`envelope`]** — the versioned `BENCH_*.json` artifact, now
//!   readable as well as writable: [`Envelope::parse`] /
//!   [`Envelope::to_json`] round-trip the exact committed layout.
//! * **[`compare`]** — the regression gate: [`compare::compare`] diffs
//!   a fresh envelope against the committed baseline row by row, with
//!   exact checks for determinism contracts and tolerance gates for
//!   wall-clock metrics. Nonzero exit on regression, wired into CI.
//! * **[`report`]** — [`report::render_trajectory`] renders every
//!   committed envelope into `BENCH_TRAJECTORY.md`, the human-readable
//!   performance history.
//! * **[`trace`]** — [`trace::capture_trace`] keeps the *individual*
//!   profiling spans (substrate build phases, job lifecycles) a run
//!   emits and [`trace::to_chrome_json`] writes them as a
//!   chrome://tracing / Perfetto `trace.json`.
//! * **[`dashboard`]** — [`dashboard::render_dashboard`] renders all
//!   committed envelopes plus a live
//!   [`TelemetrySnapshot`](duality_telemetry::TelemetrySnapshot) into
//!   one self-contained `BENCH_DASHBOARD.html` (inline SVG sparklines
//!   and phase bars, per-tenant attribution, memory gauges — zero
//!   external assets).
//!
//! # Example
//!
//! ```
//! use duality_lab::{compare, runner, Envelope, LabSpec, Tolerances};
//!
//! let text = "\
//! {\"kind\": \"lab\", \"schema_version\": 1, \"name\": \"EX\", \"seed\": 3, \"mode\": \"replay\"}
//! {\"kind\": \"cell\", \"workers\": 1, \"shards\": 1, \"smoke\": 1}
//! {\"kind\": \"preset\", \"name\": \"steady-state\", \"smoke\": 1}
//! ";
//! let spec = LabSpec::parse_jsonl(text).unwrap();
//! assert_eq!(spec.to_jsonl(), text, "canonical form is byte-stable");
//!
//! let rows = runner::run_spec(&spec, false, None).unwrap();
//! let envelope = Envelope::from_rows(&spec.name, spec.seed, false, rows);
//! // A fresh envelope always passes the gate against itself.
//! let verdict = compare::compare(&envelope, &envelope, &Tolerances::default()).unwrap();
//! assert!(verdict.passed());
//! ```

pub mod compare;
pub mod dashboard;
pub mod envelope;
pub mod error;
pub mod report;
pub mod runner;
pub mod spec;
pub mod trace;

pub use compare::{CompareReport, Tolerances};
pub use dashboard::render_dashboard;
pub use envelope::{EnvRow, Envelope, Json, BENCH_SCHEMA_VERSION};
pub use error::LabError;
pub use report::render_trajectory;
pub use runner::{run_spec, SUBSTRATE_PHASES};
pub use spec::{
    AutopilotSettings, GridCell, LabSpec, MemorySettings, RampSettings, RunMode, ScenarioRef,
    LAB_SCHEMA_VERSION,
};
pub use trace::{capture_trace, parse_chrome_json, to_chrome_json, TraceSlice};
