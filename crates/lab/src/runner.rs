//! Runs a [`LabSpec`]: scenarios × grid cells → measurement rows.
//!
//! Replay mode reproduces the S5 discipline exactly — record the
//! scenario, materialize once, replay through every engine shape, and
//! check each replay bit-for-bit against serial ground truth — so a
//! committed spec file regenerates the same sweep the hard-coded bench
//! used to. Ramp mode runs the saturation probe
//! ([`duality_workload::ramp()`]) per cell and reports the maximum
//! sustainable rate and knee-of-curve latency.
//!
//! Both modes finish by deriving `scaling-efficiency` — the row's
//! headline rate divided by the same scenario's rate at 1 worker with
//! the same shard count — so flat worker scaling is visible *in the
//! artifact*, not only by eyeballing columns.

use crate::envelope::EnvRow;
use crate::error::LabError;
use crate::spec::{LabSpec, RampSettings, RunMode};
use duality_workload::driver::{self, DriverConfig};
use duality_workload::{ramp, RampConfig};

/// Runs every (scenario, cell) pair of `spec` and returns the rows, in
/// scenario-major order. `smoke` keeps only the smoke-flagged scenarios
/// and cells (and applies the ramp smoke overrides); `seed` overrides
/// the spec's seed when given (the bench harness passes its own).
///
/// # Errors
///
/// [`LabError::Schema`] when the spec fails validation;
/// [`LabError::Workload`] when recording or replay fails.
pub fn run_spec(spec: &LabSpec, smoke: bool, seed: Option<u64>) -> Result<Vec<EnvRow>, LabError> {
    spec.validate()?;
    let seed = seed.unwrap_or(spec.seed);
    let cells = spec.run_cells(smoke);
    let mut rows = Vec::new();
    for scenario_ref in spec.run_scenarios(smoke) {
        let scenario = scenario_ref.resolve(seed)?;
        let trace = scenario.record()?;
        // Materialize once and reuse across every cell — the sweep
        // rebuilds no tenant graph.
        let jobs = trace.materialize()?;
        let (n, d) = (jobs[0].instance.n(), jobs[0].instance.graph().diameter());
        match &spec.mode {
            RunMode::Replay => {
                let serial = driver::run_serial_jobs(&jobs)?;
                for cell in &cells {
                    let report = driver::drive_jobs(
                        &jobs,
                        trace.header.arrival,
                        &DriverConfig {
                            workers: cell.workers,
                            shards: cell.shards,
                            ..DriverConfig::default()
                        },
                    )?;
                    let matches = report.fingerprints.len() == serial.fingerprints.len()
                        && report
                            .fingerprints
                            .iter()
                            .zip(&serial.fingerprints)
                            .all(|(got, want)| *got == Some(*want));
                    let m = &report.metrics;
                    let pool = m.pool_total();
                    rows.push(EnvRow {
                        experiment: spec.name.clone(),
                        instance: instance_label(&scenario.name, cell.workers, cell.shards),
                        n,
                        d,
                        values: vec![
                            ("jobs".into(), trace.query_count() as f64),
                            ("respecs".into(), trace.respec_count() as f64),
                            ("replay=serial".into(), f64::from(u8::from(matches))),
                            ("completed".into(), m.completed as f64),
                            ("throughput-jps".into(), report.throughput_jps()),
                            (
                                "p50-us".into(),
                                m.latency.quantile_us(0.5).unwrap_or(0) as f64,
                            ),
                            (
                                "p99-us".into(),
                                m.latency.quantile_us(0.99).unwrap_or(0) as f64,
                            ),
                            ("engine-substrate".into(), m.substrate_rounds() as f64),
                            ("engine-query".into(), m.query_rounds() as f64),
                            ("serial-substrate".into(), serial.substrate_rounds as f64),
                            ("serial-query".into(), serial.query_rounds as f64),
                            ("pool-hits".into(), pool.hits as f64),
                            ("pool-misses".into(), pool.misses as f64),
                            ("respec-reuses".into(), pool.respec_reuses as f64),
                        ],
                    });
                }
            }
            RunMode::Ramp(settings) => {
                let config = ramp_config(settings, smoke);
                for cell in &cells {
                    let report = ramp::ramp(
                        &jobs,
                        &config,
                        &DriverConfig {
                            workers: cell.workers,
                            shards: cell.shards,
                            ..DriverConfig::default()
                        },
                    )?;
                    let saturated = report.rounds.last().is_some_and(|r| r.overloaded);
                    rows.push(EnvRow {
                        experiment: spec.name.clone(),
                        instance: instance_label(&scenario.name, cell.workers, cell.shards),
                        n,
                        d,
                        values: vec![
                            ("rounds".into(), report.rounds.len() as f64),
                            ("max-sustainable-jps".into(), report.max_sustainable_jps),
                            ("knee-p50-us".into(), report.knee_p50_us as f64),
                            ("knee-p99-us".into(), report.knee_p99_us as f64),
                            ("saturated".into(), f64::from(u8::from(saturated))),
                        ],
                    });
                }
            }
        }
    }
    add_scaling_efficiency(&mut rows, headline_metric(&spec.mode));
    Ok(rows)
}

/// The `"<scenario>, <workers> wrk / <shards> shd"` row label the S5
/// sweep established; the part before the comma doubles as the
/// envelope's scenario provenance.
pub fn instance_label(scenario: &str, workers: usize, shards: usize) -> String {
    format!("{scenario}, {workers} wrk / {shards} shd")
}

/// The rate metric worker scaling is judged by in each mode.
pub fn headline_metric(mode: &RunMode) -> &'static str {
    match mode {
        RunMode::Replay => "throughput-jps",
        RunMode::Ramp(_) => "max-sustainable-jps",
    }
}

fn ramp_config(s: &RampSettings, smoke: bool) -> RampConfig {
    let round_jobs = match (smoke, s.smoke_round_jobs) {
        (true, Some(j)) => j,
        _ => s.round_jobs,
    };
    let max_rounds = match (smoke, s.smoke_max_rounds) {
        (true, Some(m)) => m,
        _ => s.max_rounds,
    };
    RampConfig {
        initial_jps: s.initial_jps,
        increment_jps: s.increment_jps,
        round_jobs,
        max_rounds,
        p99_ceiling_us: s.p99_ceiling_us,
        margin_percent: s.margin_percent,
    }
}

/// Appends a derived `scaling-efficiency` value — `metric` at this
/// row's cell divided by `metric` at 1 worker with the same scenario
/// and shard count — to every row whose 1-worker baseline exists in
/// `rows` and is nonzero. Perfect scaling reads `workers`; the flat
/// wall reads ~1.0 at every worker count.
pub fn add_scaling_efficiency(rows: &mut [EnvRow], metric: &str) {
    let baselines: Vec<(String, f64)> = rows
        .iter()
        .filter_map(|row| {
            let (scenario, workers, shards) = parse_label(&row.instance)?;
            if workers != 1 {
                return None;
            }
            Some((format!("{scenario}/{shards}"), row.value(metric)?))
        })
        .collect();
    for row in rows.iter_mut() {
        let Some((scenario, _, shards)) = parse_label(&row.instance) else {
            continue;
        };
        let key = format!("{scenario}/{shards}");
        let Some((_, base)) = baselines.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        if *base <= 0.0 {
            continue;
        }
        if let Some(v) = row.value(metric) {
            row.values.push(("scaling-efficiency".into(), v / base));
        }
    }
}

/// Splits an [`instance_label`] back into (scenario, workers, shards);
/// `None` for labels from other conventions.
fn parse_label(instance: &str) -> Option<(&str, usize, usize)> {
    let (scenario, cell) = instance.split_once(',')?;
    let cell = cell.trim();
    let (workers, rest) = cell.split_once(" wrk / ")?;
    let shards = rest.strip_suffix(" shd")?;
    Some((scenario.trim(), workers.parse().ok()?, shards.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GridCell, ScenarioRef};

    fn replay_spec() -> LabSpec {
        LabSpec {
            name: "SX".into(),
            seed: 6,
            mode: RunMode::Replay,
            cells: vec![
                GridCell {
                    workers: 1,
                    shards: 1,
                    smoke: true,
                },
                GridCell {
                    workers: 2,
                    shards: 1,
                    smoke: true,
                },
            ],
            scenarios: vec![ScenarioRef::Preset {
                name: "steady-state".into(),
                smoke: true,
            }],
        }
    }

    #[test]
    fn replay_mode_reproduces_the_s5_discipline() {
        let rows = run_spec(&replay_spec(), false, None).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.experiment, "SX");
            assert_eq!(row.value("replay=serial"), Some(1.0), "{}", row.instance);
            assert_eq!(row.value("completed"), row.value("jobs"));
            assert_eq!(row.value("engine-query"), row.value("serial-query"));
        }
        assert_eq!(rows[0].instance, "steady-state, 1 wrk / 1 shd");
        // Efficiency is derived against the 1-worker cell: exactly 1.0
        // there, and present on the 2-worker row too.
        assert_eq!(rows[0].value("scaling-efficiency"), Some(1.0));
        assert!(rows[1].value("scaling-efficiency").is_some());
    }

    #[test]
    fn seed_overrides_rewrite_the_sweep() {
        let a = run_spec(&replay_spec(), false, None).unwrap();
        let b = run_spec(&replay_spec(), false, Some(6)).unwrap();
        // Same seed → same deterministic columns.
        assert_eq!(a[0].value("jobs"), b[0].value("jobs"));
        assert_eq!(
            a[0].value("serial-substrate"),
            b[0].value("serial-substrate")
        );
    }

    #[test]
    fn ramp_mode_reports_saturation_columns() {
        let mut spec = replay_spec();
        spec.mode = RunMode::Ramp(RampSettings {
            initial_jps: 100,
            increment_jps: 400,
            round_jobs: 8,
            max_rounds: 2,
            p99_ceiling_us: None,
            margin_percent: 90,
            smoke_round_jobs: Some(4),
            smoke_max_rounds: Some(1),
        });
        spec.cells.truncate(1);
        let rows = run_spec(&spec, true, None).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(
            row.value("rounds").unwrap() <= 1.0,
            "smoke override caps rounds"
        );
        assert!(row.value("max-sustainable-jps").is_some());
        assert!(row.value("knee-p99-us").is_some());
        assert!(row.value("saturated").is_some());
    }

    #[test]
    fn efficiency_skips_rows_without_a_baseline() {
        let mut rows = vec![EnvRow {
            experiment: "S".into(),
            instance: "lonely, 4 wrk / 2 shd".into(),
            n: 1,
            d: 1,
            values: vec![("throughput-jps".into(), 100.0)],
        }];
        add_scaling_efficiency(&mut rows, "throughput-jps");
        assert_eq!(rows[0].value("scaling-efficiency"), None);
    }
}
