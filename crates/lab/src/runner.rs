//! Runs a [`LabSpec`]: scenarios × grid cells → measurement rows.
//!
//! Replay mode reproduces the S5 discipline exactly — record the
//! scenario, materialize once, replay through every engine shape, and
//! check each replay bit-for-bit against serial ground truth — so a
//! committed spec file regenerates the same sweep the hard-coded bench
//! used to. Ramp mode runs the saturation probe
//! ([`duality_workload::ramp()`]) per cell and reports the maximum
//! sustainable rate and knee-of-curve latency.
//!
//! Both modes finish by deriving `scaling-efficiency` — the row's
//! headline rate divided by the same scenario's rate at 1 worker with
//! the same shard count — so flat worker scaling is visible *in the
//! artifact*, not only by eyeballing columns.

use crate::envelope::EnvRow;
use crate::error::LabError;
use crate::spec::{AutopilotSettings, GridCell, LabSpec, MemorySettings, RampSettings, RunMode};
use duality_control::{AutopilotPolicy, ControlError, FleetSpec, Reconciler, TenantDecl};
use duality_service::{AdmissionPolicy, ServiceEngine, Ticket};
use duality_telemetry::Telemetry;
use duality_workload::driver::{self, DriverConfig};
use duality_workload::trace::{Trace, TraceJob};
use duality_workload::{ramp, RampConfig, WorkloadError};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Runs every (scenario, cell) pair of `spec` and returns the rows, in
/// scenario-major order. `smoke` keeps only the smoke-flagged scenarios
/// and cells (and applies the ramp smoke overrides); `seed` overrides
/// the spec's seed when given (the bench harness passes its own).
///
/// # Errors
///
/// [`LabError::Schema`] when the spec fails validation;
/// [`LabError::Workload`] when recording or replay fails.
pub fn run_spec(spec: &LabSpec, smoke: bool, seed: Option<u64>) -> Result<Vec<EnvRow>, LabError> {
    spec.validate()?;
    let seed = seed.unwrap_or(spec.seed);
    let cells = spec.run_cells(smoke);
    let mut rows = Vec::new();
    for scenario_ref in spec.run_scenarios(smoke) {
        let scenario = scenario_ref.resolve(seed)?;
        let trace = scenario.record()?;
        // Materialize once and reuse across every cell — the sweep
        // rebuilds no tenant graph.
        let jobs = trace.materialize()?;
        let (n, d) = (jobs[0].instance.n(), jobs[0].instance.graph().diameter());
        match &spec.mode {
            RunMode::Replay => {
                let serial = driver::run_serial_jobs(&jobs)?;
                for cell in &cells {
                    let report = driver::drive_jobs(
                        &jobs,
                        trace.header.arrival,
                        &DriverConfig {
                            workers: cell.workers,
                            shards: cell.shards,
                            ..DriverConfig::default()
                        },
                    )?;
                    let matches = report.fingerprints.len() == serial.fingerprints.len()
                        && report
                            .fingerprints
                            .iter()
                            .zip(&serial.fingerprints)
                            .all(|(got, want)| *got == Some(*want));
                    let m = &report.metrics;
                    let pool = m.pool_total();
                    rows.push(EnvRow {
                        experiment: spec.name.clone(),
                        instance: instance_label(&scenario.name, cell.workers, cell.shards),
                        n,
                        d,
                        values: vec![
                            ("jobs".into(), trace.query_count() as f64),
                            ("respecs".into(), trace.respec_count() as f64),
                            ("replay=serial".into(), f64::from(u8::from(matches))),
                            ("completed".into(), m.completed as f64),
                            ("throughput-jps".into(), report.throughput_jps()),
                            (
                                "p50-us".into(),
                                m.latency.quantile_us(0.5).unwrap_or(0) as f64,
                            ),
                            (
                                "p99-us".into(),
                                m.latency.quantile_us(0.99).unwrap_or(0) as f64,
                            ),
                            ("engine-substrate".into(), m.substrate_rounds() as f64),
                            ("engine-query".into(), m.query_rounds() as f64),
                            ("serial-substrate".into(), serial.substrate_rounds as f64),
                            ("serial-query".into(), serial.query_rounds as f64),
                            ("pool-hits".into(), pool.hits as f64),
                            ("pool-misses".into(), pool.misses as f64),
                            ("respec-reuses".into(), pool.respec_reuses as f64),
                        ],
                    });
                }
            }
            RunMode::Ramp(settings) => {
                let config = ramp_config(settings, smoke);
                for cell in &cells {
                    let report = ramp::ramp(
                        &jobs,
                        &config,
                        &DriverConfig {
                            workers: cell.workers,
                            shards: cell.shards,
                            ..DriverConfig::default()
                        },
                    )?;
                    let saturated = report.rounds.last().is_some_and(|r| r.overloaded);
                    rows.push(EnvRow {
                        experiment: spec.name.clone(),
                        instance: instance_label(&scenario.name, cell.workers, cell.shards),
                        n,
                        d,
                        values: vec![
                            ("rounds".into(), report.rounds.len() as f64),
                            ("max-sustainable-jps".into(), report.max_sustainable_jps),
                            ("knee-p50-us".into(), report.knee_p50_us as f64),
                            ("knee-p99-us".into(), report.knee_p99_us as f64),
                            ("saturated".into(), f64::from(u8::from(saturated))),
                        ],
                    });
                }
            }
            RunMode::Autopilot(settings) => {
                for cell in &cells {
                    run_autopilot_cell(spec, &trace, &jobs, *cell, settings, n, d, &mut rows)?;
                }
            }
            RunMode::Memory(settings) => {
                for cell in &cells {
                    run_memory_cell(
                        spec,
                        &scenario.name,
                        &jobs,
                        *cell,
                        settings,
                        n,
                        d,
                        &mut rows,
                    )?;
                }
            }
        }
    }
    add_scaling_efficiency(&mut rows, headline_metric(&spec.mode));
    Ok(rows)
}

/// Runs the S8 discipline for one grid cell: the trace's tick span is
/// split into thirds — `calm-in` (per-tick submit → harvest →
/// reconcile), `storm` (the middle third submitted as one burst *before*
/// reconciling, so the autopilot judges the full backlog), `calm-out`
/// (per-tick again, letting hysteresis retire the surge) — each phase
/// landing as its own row with windowed latency splits from the
/// telemetry spine. A final `static-peak` row drives the whole trace
/// through a fixed fleet of `surge_workers`, the capacity the autopilot
/// only rents during the storm.
#[allow(clippy::too_many_arguments)]
fn run_autopilot_cell(
    spec: &LabSpec,
    trace: &Trace,
    jobs: &[TraceJob],
    cell: GridCell,
    a: &AutopilotSettings,
    n: usize,
    d: usize,
    rows: &mut Vec<EnvRow>,
) -> Result<(), LabError> {
    let scenario = &trace.header.scenario;
    let fleet_spec = FleetSpec {
        name: format!("{}-autopilot", spec.name),
        revision: 1,
        workers: cell.workers,
        shards: cell.shards,
        // The storm phase holds a full burst in the queue while the
        // autopilot judges it; size admission so the burst never blocks.
        queue_capacity: jobs.len().max(16),
        pool_capacity: DriverConfig::default().pool_capacity,
        admission: AdmissionPolicy::Block,
        tenants: trace
            .header
            .tenants
            .iter()
            .enumerate()
            .map(|(i, record)| TenantDecl {
                name: format!("tenant-{i}"),
                record: *record,
                prewarm: true,
                derate_percent: 100,
                slo: None,
            })
            .collect(),
    };
    let telemetry = Arc::new(Telemetry::new((jobs.len() * 2 + 64).max(256)));
    let mut fleet = Reconciler::launch_with_telemetry(fleet_spec, Arc::clone(&telemetry))
        .map_err(control_err)?;
    fleet.reconcile().map_err(control_err)?;
    fleet
        .enable_autopilot(AutopilotPolicy {
            queue_high_water: a.queue_high_water,
            queue_low_water: a.queue_low_water,
            p99_high_us: a.p99_high_us,
            p99_low_us: a.p99_low_us,
            scale_step: a.scale_step,
            max_workers: a.surge_workers,
            cooldown_rounds: a.cooldown_rounds,
        })
        .map_err(control_err)?;

    let ticks = trace.header.ticks;
    let phases: [(&str, Range<u64>); 3] = [
        ("calm-in", 0..ticks / 3),
        ("storm", ticks / 3..ticks - ticks / 3),
        ("calm-out", ticks - ticks / 3..ticks),
    ];
    for (phase, range) in phases {
        let phase_jobs: Vec<&TraceJob> = jobs.iter().filter(|j| range.contains(&j.vt)).collect();
        let start_snap = telemetry.snapshot();
        let start_metrics = fleet.engine().metrics();
        let started = Instant::now();
        let mut peak = start_metrics.workers;
        if phase == "storm" {
            // The whole storm backlog lands before the controller looks:
            // one reconcile pass per storm tick against the held burst,
            // so the autopilot can step to its ceiling while the queue
            // is deep. Retirement is calm-out's story.
            let tickets = submit_all(fleet.engine(), phase_jobs.iter().copied())?;
            for _ in range {
                fleet.reconcile().map_err(control_err)?;
                peak = peak.max(fleet.engine().metrics().workers);
            }
            harvest(tickets);
        } else {
            for vt in range {
                let tick_jobs = phase_jobs.iter().copied().filter(|j| j.vt == vt);
                harvest(submit_all(fleet.engine(), tick_jobs)?);
                fleet.reconcile().map_err(control_err)?;
                peak = peak.max(fleet.engine().metrics().workers);
            }
        }
        let wall = started.elapsed();
        let end_snap = telemetry.snapshot();
        let end_metrics = fleet.engine().metrics();
        let wait = end_snap.fleet_wait().delta(&start_snap.fleet_wait());
        let service = end_snap.fleet_service().delta(&start_snap.fleet_service());
        let total = end_snap.fleet_total().delta(&start_snap.fleet_total());
        let worst_tenant = end_snap
            .tenants
            .iter()
            .filter_map(|t| {
                let base = start_snap
                    .tenant(t.tenant)
                    .map(|b| b.stats.total)
                    .unwrap_or_default();
                t.stats.total.delta(&base).quantile_us(0.99)
            })
            .max();
        let decisions = &end_snap.events[start_snap.events.len()..];
        let count_label = |label: &str| decisions.iter().filter(|e| e.label == label).count();
        let completed = end_metrics.completed - start_metrics.completed;
        let secs = wall.as_secs_f64();
        rows.push(EnvRow {
            experiment: spec.name.clone(),
            instance: instance_label(&format!("{scenario} [{phase}]"), cell.workers, cell.shards),
            n,
            d,
            values: vec![
                ("jobs".into(), phase_jobs.len() as f64),
                ("completed".into(), completed as f64),
                (
                    "throughput-jps".into(),
                    if secs > 0.0 {
                        completed as f64 / secs
                    } else {
                        0.0
                    },
                ),
                ("p99-us".into(), total.quantile_us(0.99).unwrap_or(0) as f64),
                (
                    "wait-p99-us".into(),
                    wait.quantile_us(0.99).unwrap_or(0) as f64,
                ),
                (
                    "service-p99-us".into(),
                    service.quantile_us(0.99).unwrap_or(0) as f64,
                ),
                (
                    "worst-tenant-p99-us".into(),
                    worst_tenant.unwrap_or(0) as f64,
                ),
                ("workers-start".into(), start_metrics.workers as f64),
                ("workers-peak".into(), peak as f64),
                ("workers-end".into(), end_metrics.workers as f64),
                ("scale-ups".into(), count_label("scale-up") as f64),
                ("scale-downs".into(), count_label("scale-down") as f64),
                ("spans".into(), (end_snap.spans - start_snap.spans) as f64),
                ("spans-dropped".into(), end_snap.dropped as f64),
            ],
        });
    }
    fleet.shutdown();

    // The comparison fleet: a static roster of the surge size serving
    // the same trace — the peak capacity the autopilot only rents.
    let report = driver::drive_jobs(
        jobs,
        trace.header.arrival,
        &DriverConfig {
            workers: a.surge_workers,
            shards: cell.shards,
            ..DriverConfig::default()
        },
    )?;
    let m = &report.metrics;
    rows.push(EnvRow {
        experiment: spec.name.clone(),
        instance: instance_label(
            &format!("{scenario} [static-peak]"),
            a.surge_workers,
            cell.shards,
        ),
        n,
        d,
        values: vec![
            ("jobs".into(), jobs.len() as f64),
            ("completed".into(), m.completed as f64),
            ("throughput-jps".into(), report.throughput_jps()),
            (
                "p99-us".into(),
                m.latency.quantile_us(0.99).unwrap_or(0) as f64,
            ),
            ("workers-start".into(), a.surge_workers as f64),
            ("workers-peak".into(), a.surge_workers as f64),
            ("workers-end".into(), a.surge_workers as f64),
        ],
    });
    Ok(())
}

/// The five substrate build phases, in first-charge order. Memory rows
/// report every phase (zero when unexercised) so row shape never
/// drifts with the query mix.
pub const SUBSTRATE_PHASES: [&str; 5] = ["embed", "dual", "bdd", "weight-tier", "labeling"];

/// Runs the S10 discipline for one grid cell: the whole trace is
/// driven through a byte-budgeted, telemetry-wired engine, and the row
/// records where the substrate build time went (per-phase µs from the
/// profiling spans) and what it cost to keep (resident / peak /
/// evicted pool bytes from the size-aware pool).
#[allow(clippy::too_many_arguments)]
fn run_memory_cell(
    spec: &LabSpec,
    scenario: &str,
    jobs: &[TraceJob],
    cell: GridCell,
    settings: &MemorySettings,
    n: usize,
    d: usize,
    rows: &mut Vec<EnvRow>,
) -> Result<(), LabError> {
    // Phase spans arrive in bursts of up to five per substrate build;
    // size the ring so none are dropped and the µs totals stay exact.
    let telemetry = Telemetry::new((jobs.len() * 8 + 64).max(256));
    let budget = (settings.pool_byte_budget > 0).then_some(settings.pool_byte_budget);
    let engine = ServiceEngine::builder()
        .workers(cell.workers)
        .shards(cell.shards)
        .queue_capacity(jobs.len().max(16))
        .admission(AdmissionPolicy::Block)
        .pool_byte_budget(budget)
        .span_sink(telemetry.sink())
        .build()
        .map_err(|e| LabError::Workload(WorkloadError::from(e)))?;
    harvest(submit_all(&engine, jobs.iter())?);
    let m = engine.shutdown();
    telemetry.set_pool_bytes(
        m.resident_bytes(),
        m.peak_resident_bytes(),
        m.evicted_bytes(),
    );
    let snap = telemetry.snapshot();
    let pool = m.pool_total();
    let mut values = vec![
        ("jobs".into(), jobs.len() as f64),
        ("completed".into(), m.completed as f64),
    ];
    for phase in SUBSTRATE_PHASES {
        let us = snap
            .phase_us
            .iter()
            .find(|(p, _)| p == phase)
            .map_or(0, |(_, us)| *us);
        values.push((format!("phase-{phase}-us"), us as f64));
    }
    values.extend([
        (
            "substrate-build-us".into(),
            snap.phase_us.iter().map(|(_, us)| us).sum::<u64>() as f64,
        ),
        ("resident-bytes".into(), m.resident_bytes() as f64),
        ("peak-resident-bytes".into(), m.peak_resident_bytes() as f64),
        ("evicted-bytes".into(), m.evicted_bytes() as f64),
        ("byte-budget".into(), settings.pool_byte_budget as f64),
        ("pool-hits".into(), pool.hits as f64),
        ("pool-misses".into(), pool.misses as f64),
        ("pool-evictions".into(), pool.evictions as f64),
    ]);
    rows.push(EnvRow {
        experiment: spec.name.clone(),
        instance: instance_label(scenario, cell.workers, cell.shards),
        n,
        d,
        values,
    });
    Ok(())
}

fn control_err(e: ControlError) -> LabError {
    LabError::Schema(format!("autopilot fleet: {e}"))
}

/// Submits every job, returning the tickets in submission order. The
/// autopilot fleet admits with `Block` and a queue sized for the full
/// burst, so a refusal here is a driver bug, not load data.
fn submit_all<'a>(
    engine: &ServiceEngine,
    jobs: impl Iterator<Item = &'a TraceJob>,
) -> Result<Vec<Ticket>, LabError> {
    let mut tickets = Vec::new();
    for job in jobs {
        match engine.submit(&job.instance, job.query) {
            Ok(t) => tickets.push(t),
            Err(e) => return Err(LabError::Workload(WorkloadError::Submit(e))),
        }
    }
    Ok(tickets)
}

/// Waits out every ticket; outcome counting is the metrics layer's job.
fn harvest(tickets: Vec<Ticket>) {
    for ticket in tickets {
        let _ = ticket.wait();
    }
}

/// The `"<scenario>, <workers> wrk / <shards> shd"` row label the S5
/// sweep established; the part before the comma doubles as the
/// envelope's scenario provenance.
pub fn instance_label(scenario: &str, workers: usize, shards: usize) -> String {
    format!("{scenario}, {workers} wrk / {shards} shd")
}

/// The rate metric worker scaling is judged by in each mode. Memory
/// rows carry no rate metric at all, so the efficiency derivation
/// finds no baseline and leaves them untouched.
pub fn headline_metric(mode: &RunMode) -> &'static str {
    match mode {
        RunMode::Replay | RunMode::Autopilot(_) | RunMode::Memory(_) => "throughput-jps",
        RunMode::Ramp(_) => "max-sustainable-jps",
    }
}

fn ramp_config(s: &RampSettings, smoke: bool) -> RampConfig {
    let round_jobs = match (smoke, s.smoke_round_jobs) {
        (true, Some(j)) => j,
        _ => s.round_jobs,
    };
    let max_rounds = match (smoke, s.smoke_max_rounds) {
        (true, Some(m)) => m,
        _ => s.max_rounds,
    };
    RampConfig {
        initial_jps: s.initial_jps,
        increment_jps: s.increment_jps,
        round_jobs,
        max_rounds,
        p99_ceiling_us: s.p99_ceiling_us,
        margin_percent: s.margin_percent,
    }
}

/// Appends a derived `scaling-efficiency` value — `metric` at this
/// row's cell divided by `metric` at 1 worker with the same scenario
/// and shard count — to every row whose 1-worker baseline exists in
/// `rows` and is nonzero. Perfect scaling reads `workers`; the flat
/// wall reads ~1.0 at every worker count.
pub fn add_scaling_efficiency(rows: &mut [EnvRow], metric: &str) {
    let baselines: Vec<(String, f64)> = rows
        .iter()
        .filter_map(|row| {
            let (scenario, workers, shards) = parse_label(&row.instance)?;
            if workers != 1 {
                return None;
            }
            Some((format!("{scenario}/{shards}"), row.value(metric)?))
        })
        .collect();
    for row in rows.iter_mut() {
        let Some((scenario, _, shards)) = parse_label(&row.instance) else {
            continue;
        };
        let key = format!("{scenario}/{shards}");
        let Some((_, base)) = baselines.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        if *base <= 0.0 {
            continue;
        }
        if let Some(v) = row.value(metric) {
            row.values.push(("scaling-efficiency".into(), v / base));
        }
    }
}

/// Splits an [`instance_label`] back into (scenario, workers, shards);
/// `None` for labels from other conventions.
fn parse_label(instance: &str) -> Option<(&str, usize, usize)> {
    let (scenario, cell) = instance.split_once(',')?;
    let cell = cell.trim();
    let (workers, rest) = cell.split_once(" wrk / ")?;
    let shards = rest.strip_suffix(" shd")?;
    Some((scenario.trim(), workers.parse().ok()?, shards.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GridCell, ScenarioRef};

    fn replay_spec() -> LabSpec {
        LabSpec {
            name: "SX".into(),
            seed: 6,
            mode: RunMode::Replay,
            cells: vec![
                GridCell {
                    workers: 1,
                    shards: 1,
                    smoke: true,
                },
                GridCell {
                    workers: 2,
                    shards: 1,
                    smoke: true,
                },
            ],
            scenarios: vec![ScenarioRef::Preset {
                name: "steady-state".into(),
                smoke: true,
            }],
        }
    }

    #[test]
    fn replay_mode_reproduces_the_s5_discipline() {
        let rows = run_spec(&replay_spec(), false, None).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.experiment, "SX");
            assert_eq!(row.value("replay=serial"), Some(1.0), "{}", row.instance);
            assert_eq!(row.value("completed"), row.value("jobs"));
            assert_eq!(row.value("engine-query"), row.value("serial-query"));
        }
        assert_eq!(rows[0].instance, "steady-state, 1 wrk / 1 shd");
        // Efficiency is derived against the 1-worker cell: exactly 1.0
        // there, and present on the 2-worker row too.
        assert_eq!(rows[0].value("scaling-efficiency"), Some(1.0));
        assert!(rows[1].value("scaling-efficiency").is_some());
    }

    #[test]
    fn seed_overrides_rewrite_the_sweep() {
        let a = run_spec(&replay_spec(), false, None).unwrap();
        let b = run_spec(&replay_spec(), false, Some(6)).unwrap();
        // Same seed → same deterministic columns.
        assert_eq!(a[0].value("jobs"), b[0].value("jobs"));
        assert_eq!(
            a[0].value("serial-substrate"),
            b[0].value("serial-substrate")
        );
    }

    #[test]
    fn ramp_mode_reports_saturation_columns() {
        let mut spec = replay_spec();
        spec.mode = RunMode::Ramp(RampSettings {
            initial_jps: 100,
            increment_jps: 400,
            round_jobs: 8,
            max_rounds: 2,
            p99_ceiling_us: None,
            margin_percent: 90,
            smoke_round_jobs: Some(4),
            smoke_max_rounds: Some(1),
        });
        spec.cells.truncate(1);
        let rows = run_spec(&spec, true, None).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(
            row.value("rounds").unwrap() <= 1.0,
            "smoke override caps rounds"
        );
        assert!(row.value("max-sustainable-jps").is_some());
        assert!(row.value("knee-p99-us").is_some());
        assert!(row.value("saturated").is_some());
    }

    #[test]
    fn autopilot_mode_surges_in_the_storm_and_retires_after() {
        let mut spec = replay_spec();
        spec.mode = RunMode::Autopilot(AutopilotSettings {
            queue_high_water: 4,
            queue_low_water: 1,
            // Latency bands parked far above anything the test machine
            // produces: scale-up is queue-driven, retire is never vetoed.
            p99_high_us: 60_000_000,
            p99_low_us: 30_000_000,
            scale_step: 2,
            surge_workers: 6,
            cooldown_rounds: 0,
        });
        spec.cells = vec![GridCell {
            workers: 2,
            shards: 2,
            smoke: true,
        }];
        spec.scenarios = vec![ScenarioRef::Preset {
            name: "failover-storm".into(),
            smoke: true,
        }];
        let rows = run_spec(&spec, false, None).unwrap();
        assert_eq!(rows.len(), 4, "three phases plus the static-peak row");
        let by = |tag: &str| {
            rows.iter()
                .find(|r| r.instance.contains(&format!("[{tag}]")))
                .unwrap()
        };
        for tag in ["calm-in", "storm", "calm-out"] {
            let row = by(tag);
            assert_eq!(
                row.value("completed"),
                row.value("jobs"),
                "{}",
                row.instance
            );
            // Spans can trail jobs by the drop-counted few that raced a
            // ring drain; they never exceed them.
            assert!(row.value("spans") <= row.value("jobs"), "{}", row.instance);
        }
        assert_eq!(by("calm-in").value("workers-start"), Some(2.0));
        let storm = by("storm");
        assert!(storm.value("scale-ups").unwrap() >= 1.0, "burst must surge");
        assert!(storm.value("workers-peak").unwrap() > 2.0);
        // A fast machine can drain the burst mid-storm and retire within
        // the storm row itself, so the retire decisions are asserted
        // across phases rather than pinned to calm-out.
        let downs: f64 = rows.iter().filter_map(|r| r.value("scale-downs")).sum();
        assert!(downs >= 1.0, "the surge is retired");
        let out = by("calm-out");
        assert_eq!(out.value("workers-end"), Some(2.0), "retire to the floor");
        let peak = by("static-peak");
        assert_eq!(peak.value("workers-end"), Some(6.0));
        assert_eq!(peak.value("completed"), peak.value("jobs"));
    }

    #[test]
    fn memory_mode_reports_phase_splits_and_byte_gauges() {
        let mut spec = replay_spec();
        spec.mode = RunMode::Memory(MemorySettings {
            pool_byte_budget: 0,
        });
        spec.cells.truncate(1);
        let rows = run_spec(&spec, false, None).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.value("completed"), row.value("jobs"));
        let phase_sum: f64 = SUBSTRATE_PHASES
            .iter()
            .map(|p| row.value(&format!("phase-{p}-us")).unwrap())
            .sum();
        assert_eq!(
            Some(phase_sum),
            row.value("substrate-build-us"),
            "the five phases account for the whole build"
        );
        assert!(row.value("resident-bytes").unwrap() > 0.0);
        assert!(row.value("peak-resident-bytes").unwrap() >= row.value("resident-bytes").unwrap());
        assert_eq!(
            row.value("evicted-bytes"),
            Some(0.0),
            "unbounded: no evictions"
        );
        assert_eq!(
            row.value("scaling-efficiency"),
            None,
            "memory rows carry no rate metric"
        );

        // A starvation-level byte budget forces size-aware eviction:
        // three tenants through one shard cannot all stay resident.
        spec.mode = RunMode::Memory(MemorySettings {
            pool_byte_budget: 1,
        });
        let tight = run_spec(&spec, false, None).unwrap();
        assert!(tight[0].value("evicted-bytes").unwrap() > 0.0);
        assert_eq!(tight[0].value("completed"), tight[0].value("jobs"));
    }

    #[test]
    fn efficiency_skips_rows_without_a_baseline() {
        let mut rows = vec![EnvRow {
            experiment: "S".into(),
            instance: "lonely, 4 wrk / 2 shd".into(),
            n: 1,
            d: 1,
            values: vec![("throughput-jps".into(), 100.0)],
        }];
        add_scaling_efficiency(&mut rows, "throughput-jps");
        assert_eq!(rows[0].value("scaling-efficiency"), None);
    }
}
