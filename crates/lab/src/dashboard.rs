//! The fleet dashboard: committed envelopes + one telemetry snapshot →
//! a single self-contained HTML document.
//!
//! `experiments dashboard` renders every committed `BENCH_*.json`
//! artifact and a live [`TelemetrySnapshot`] into
//! `BENCH_DASHBOARD.html`. The document carries **zero external
//! assets** — no scripts, no stylesheets, no fonts, no image files —
//! so the committed artifact renders identically from a repo checkout,
//! a CI artifact download, or a mail attachment, forever:
//!
//! * per-experiment sections mirror the trajectory tables, with inline
//!   SVG sparklines tracing the headline metrics (throughput, p99,
//!   sustainable rate, scaling efficiency) across the rows;
//! * the telemetry section surfaces the pool memory gauges
//!   (resident / peak / evicted bytes), the substrate phase profile as
//!   an inline SVG bar chart, and the per-tenant attribution table —
//!   who ran what, who waited, whose p99 pins the fleet.

use crate::envelope::Envelope;
use duality_telemetry::TelemetrySnapshot;

/// Metrics that get a sparkline when present in an envelope's rows, in
/// presentation order.
const SPARK_METRICS: [&str; 4] = [
    "throughput-jps",
    "max-sustainable-jps",
    "p99-us",
    "scaling-efficiency",
];

/// Renders the dashboard. `telemetry` is typically a snapshot from a
/// fresh in-process fleet; `None` omits the live-fleet section.
pub fn render_dashboard(envelopes: &[Envelope], telemetry: Option<&TelemetrySnapshot>) -> String {
    let mut out = String::from(
        "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>duality fleet dashboard</title>\n<style>\n\
         body{font:14px/1.5 ui-monospace,monospace;margin:2rem auto;max-width:72rem;\
         padding:0 1rem;color:#1a1a2e;background:#fafaf7}\n\
         h1,h2,h3{font-weight:600}\n\
         table{border-collapse:collapse;margin:.75rem 0;width:100%}\n\
         th,td{border:1px solid #d5d5cc;padding:.25rem .5rem;text-align:right}\n\
         th:first-child,td:first-child{text-align:left}\n\
         .spark{display:inline-block;vertical-align:middle;margin-right:1.25rem}\n\
         .gauge{display:inline-block;margin-right:2rem;padding:.5rem .75rem;\
         border:1px solid #d5d5cc;border-radius:4px;background:#fff}\n\
         .gauge b{display:block;font-size:1.2rem}\n\
         .bar{fill:#4a6fa5}\n.line{fill:none;stroke:#4a6fa5;stroke-width:1.5}\n\
         caption{text-align:left;font-weight:600;padding:.25rem 0}\n\
         </style>\n</head>\n<body>\n<h1>duality fleet dashboard</h1>\n\
         <p>Rendered by <code>experiments dashboard</code> from the committed\n\
         <code>BENCH_*.json</code> envelopes and a live telemetry snapshot.\n\
         Self-contained: no external assets. Do not edit by hand.</p>\n",
    );
    if let Some(snap) = telemetry {
        render_telemetry(&mut out, snap);
    }
    for env in envelopes {
        render_envelope(&mut out, env);
    }
    out.push_str("</body>\n</html>\n");
    out
}

fn render_telemetry(out: &mut String, snap: &TelemetrySnapshot) {
    out.push_str("<h2>Live fleet</h2>\n<div>\n");
    for (label, value) in [
        ("resident", snap.resident_bytes),
        ("peak resident", snap.peak_resident_bytes),
        ("evicted", snap.evicted_bytes),
    ] {
        out.push_str(&format!(
            "<span class=\"gauge\"><b>{}</b>pool {label}</span>\n",
            fmt_bytes(value)
        ));
    }
    out.push_str(&format!(
        "<span class=\"gauge\"><b>{}</b>spans attributed ({} dropped)</span>\n</div>\n",
        snap.spans, snap.dropped
    ));

    if !snap.phase_us.is_empty() {
        out.push_str("<h3>Substrate build profile</h3>\n");
        out.push_str(&phase_bars(&snap.phase_us));
    }

    if !snap.tenants.is_empty() {
        out.push_str(
            "<h3>Per-tenant attribution</h3>\n<table>\n<tr><th>tenant</th>\
             <th>completed</th><th>failed</th><th>cancelled</th><th>expired</th>\
             <th>p99 µs</th></tr>\n",
        );
        for t in &snap.tenants {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                escape(&t.label()),
                t.stats.completed,
                t.stats.failed,
                t.stats.cancelled,
                t.stats.expired,
                t.p99_total_us().map_or("—".to_string(), |p| p.to_string())
            ));
        }
        out.push_str("</table>\n");
    }
}

fn render_envelope(out: &mut String, env: &Envelope) {
    out.push_str(&format!(
        "<h2>{} <small>(seed {}, {} run)</small></h2>\n",
        escape(&env.experiment),
        env.seed,
        if env.smoke { "smoke" } else { "full" }
    ));
    // Sparklines: each headline metric's trajectory across the rows.
    let mut sparks = String::new();
    for metric in SPARK_METRICS {
        let values: Vec<f64> = env.rows.iter().filter_map(|r| r.value(metric)).collect();
        if values.len() >= 2 {
            sparks.push_str(&format!(
                "<span class=\"spark\">{} {}</span>\n",
                sparkline(&values),
                escape(metric)
            ));
        }
    }
    if !sparks.is_empty() {
        out.push_str("<div>\n");
        out.push_str(&sparks);
        out.push_str("</div>\n");
    }
    // The full table, metric union across rows (mixed-shape safe).
    let mut metrics: Vec<&str> = Vec::new();
    for row in &env.rows {
        for (name, _) in &row.values {
            if !metrics.contains(&name.as_str()) {
                metrics.push(name);
            }
        }
    }
    out.push_str("<table>\n<tr><th>instance</th><th>n</th><th>D</th>");
    for m in &metrics {
        out.push_str(&format!("<th>{}</th>", escape(m)));
    }
    out.push_str("</tr>\n");
    for row in &env.rows {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td>",
            escape(&row.instance),
            row.n,
            row.d
        ));
        for m in &metrics {
            out.push_str(&format!(
                "<td>{}</td>",
                row.value(m).map_or("—".to_string(), fmt_value)
            ));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
}

/// An inline SVG sparkline: the values as one polyline, normalized to
/// the [min, max] band.
fn sparkline(values: &[f64]) -> String {
    let (w, h, pad) = (120.0, 28.0, 2.0);
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let step = (w - 2.0 * pad) / (values.len().max(2) - 1) as f64;
    let points: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let v = if v.is_finite() { *v } else { lo };
            let x = pad + i as f64 * step;
            let y = h - pad - (v - lo) / span * (h - 2.0 * pad);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg class=\"spark\" width=\"{w:.0}\" height=\"{h:.0}\" viewBox=\"0 0 {w:.0} {h:.0}\" \
         role=\"img\"><polyline class=\"line\" points=\"{}\"/></svg>",
        points.join(" ")
    )
}

/// An inline SVG horizontal bar chart of the phase µs profile.
fn phase_bars(phases: &[(String, u64)]) -> String {
    let max = phases.iter().map(|(_, us)| *us).max().unwrap_or(1).max(1);
    let (bar_w, row_h, label_w) = (360.0, 20.0, 110.0);
    let height = row_h * phases.len() as f64 + 4.0;
    let mut out = format!(
        "<svg width=\"{:.0}\" height=\"{height:.0}\" viewBox=\"0 0 {:.0} {height:.0}\" \
         role=\"img\">\n",
        label_w + bar_w + 90.0,
        label_w + bar_w + 90.0
    );
    for (i, (phase, us)) in phases.iter().enumerate() {
        let y = 2.0 + row_h * i as f64;
        let w = bar_w * (*us as f64) / max as f64;
        out.push_str(&format!(
            "<text x=\"{:.0}\" y=\"{:.0}\" text-anchor=\"end\" font-size=\"12\">{}</text>\n\
             <rect class=\"bar\" x=\"{:.0}\" y=\"{:.0}\" width=\"{:.1}\" height=\"{:.0}\"/>\n\
             <text x=\"{:.1}\" y=\"{:.0}\" font-size=\"12\">{us}µs</text>\n",
            label_w - 6.0,
            y + row_h - 6.0,
            escape(phase),
            label_w,
            y + 3.0,
            w.max(1.0),
            row_h - 7.0,
            label_w + w.max(1.0) + 6.0,
            y + row_h - 6.0,
        ));
    }
    out.push_str("</svg>\n");
    out
}

fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        "—".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

fn fmt_bytes(b: u64) -> String {
    match b {
        0..=1023 => format!("{b} B"),
        1024..=1048575 => format!("{:.1} KiB", b as f64 / 1024.0),
        1048576..=1073741823 => format!("{:.1} MiB", b as f64 / 1048576.0),
        _ => format!("{:.2} GiB", b as f64 / 1073741824.0),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::EnvRow;

    fn envelope(id: &str) -> Envelope {
        Envelope::from_rows(
            id,
            42,
            false,
            vec![
                EnvRow {
                    experiment: id.into(),
                    instance: "steady-state, 1 wrk / 1 shd".into(),
                    n: 30,
                    d: 9,
                    values: vec![("throughput-jps".into(), 1000.0), ("p99-us".into(), 4000.0)],
                },
                EnvRow {
                    experiment: id.into(),
                    instance: "steady-state, 4 wrk / 1 shd".into(),
                    n: 30,
                    d: 9,
                    values: vec![("throughput-jps".into(), 2600.0), ("p99-us".into(), 3100.0)],
                },
            ],
        )
    }

    #[test]
    fn the_dashboard_renders_every_envelope_self_contained() {
        let envs = [envelope("S5"), envelope("S9")];
        let html = render_dashboard(&envs, None);
        for env in &envs {
            assert!(html.contains(&format!("<h2>{} ", env.experiment)));
            for row in &env.rows {
                assert!(html.contains(&row.instance), "{} row missing", row.instance);
            }
        }
        assert!(html.contains("<polyline"), "sparklines are inline SVG");
        // Self-containment: nothing fetches, links, or executes.
        for banned in ["http://", "https://", "<script", "<link", "<img", "url("] {
            assert!(!html.contains(banned), "external asset leak: {banned}");
        }
    }

    #[test]
    fn the_telemetry_section_carries_gauges_phases_and_tenants() {
        use duality_core::Query;
        use duality_planar::gen;
        use duality_service::ServiceEngine;
        use duality_telemetry::Telemetry;

        let telemetry = Telemetry::new(64);
        let engine = ServiceEngine::builder()
            .workers(1)
            .span_sink(telemetry.sink())
            .build()
            .unwrap();
        let g = gen::diag_grid(4, 4, 7).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
        let i = duality_core::PlanarInstance::new(g, Some(caps), None).unwrap();
        telemetry.name_tenant(&i, "alpha");
        engine.run(&i, Query::Girth).unwrap();
        let m = engine.shutdown();
        telemetry.set_pool_bytes(
            m.resident_bytes(),
            m.peak_resident_bytes(),
            m.evicted_bytes(),
        );
        let snap = telemetry.snapshot();

        let html = render_dashboard(&[], Some(&snap));
        assert!(html.contains("pool resident"));
        assert!(html.contains("Substrate build profile"));
        assert!(html.contains("embed"), "phase bars name the phases");
        assert!(html.contains("alpha"), "tenant table uses registered names");
        assert!(!html.contains("<script"));
    }
}
