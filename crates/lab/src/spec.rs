//! The declarative experiment spec: one versioned, byte-stable document
//! that says *what to measure* — scenarios, the worker × shard sweep
//! grid, the run mode, and how a `--smoke` run scales everything down.
//!
//! A [`LabSpec`] replaces the hard-coded preset lists the bench harness
//! grew up with: `experiments run <spec-file>` parses one of these and
//! produces the same versioned `BENCH_*.json` envelope the harness
//! always wrote. Specs serialize to the canonical JSONL codec the trace
//! and fleet-spec formats share ([`duality_workload::jsonl`]):
//! [`LabSpec::to_jsonl`] / [`LabSpec::parse_jsonl`] round-trip
//! **byte-stable**, and parsing refuses unknown schema versions, line
//! kinds, modes, and rules — a spec either means exactly what this
//! version of the code thinks it means, or it is rejected.
//!
//! The line grammar (order matters: tenants and rules attach to the
//! most recent inline scenario):
//!
//! ```text
//! {"kind": "lab", "schema_version": 1, "name": "S5", "seed": 42, "mode": "replay"}
//! {"kind": "cell", "workers": 1, "shards": 1, "smoke": 1}
//! {"kind": "preset", "name": "steady-state", "smoke": 1}
//! {"kind": "scenario", "name": "custom", "smoke": 0, "ticks": 8, ...}
//! {"kind": "tenant", "family": "diag_grid", "w": 6, "h": 5, ...}
//! {"kind": "rule", "rule": "diurnal_wave", "period": 8, "trough_percent": 60}
//! ```

use crate::error::LabError;
use duality_workload::jsonl::{family_fields, line, parse_family, Obj, Val};
use duality_workload::{Arrival, MutationRule, QueryMix, Scenario, TenantSpec};

/// Lab-spec serialization format version; parsing refuses anything
/// else.
pub const LAB_SCHEMA_VERSION: u64 = 1;

/// One cell of the sweep grid: an engine shape to measure, and whether
/// a `--smoke` run keeps it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridCell {
    /// Worker threads.
    pub workers: usize,
    /// Pool shards.
    pub shards: usize,
    /// Keep this cell in smoke runs.
    pub smoke: bool,
}

/// Saturation-probe settings carried by a ramp-mode spec (the
/// [`RampConfig`](duality_workload::RampConfig) knobs, plus smoke
/// overrides so CI probes stay CI-sized).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RampSettings {
    /// Offered rate of round 0, jobs per second.
    pub initial_jps: u64,
    /// Rate step between rounds, jobs per second.
    pub increment_jps: u64,
    /// Jobs offered per round.
    pub round_jobs: usize,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// Overload ceiling on the round p99, µs (`None`: rate-only).
    pub p99_ceiling_us: Option<u64>,
    /// Sustainability margin, percent of the offered rate.
    pub margin_percent: u32,
    /// `round_jobs` under `--smoke` (`None`: unchanged).
    pub smoke_round_jobs: Option<usize>,
    /// `max_rounds` under `--smoke` (`None`: unchanged).
    pub smoke_max_rounds: Option<usize>,
}

/// Autopilot-mode settings: the
/// [`AutopilotPolicy`](duality_control::AutopilotPolicy) thresholds the
/// runner hands the reconciler, plus the surge ceiling that doubles as
/// the static-peak comparison fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutopilotSettings {
    /// Scale up when queue depth exceeds this.
    pub queue_high_water: usize,
    /// Scale down only at or below this queue depth.
    pub queue_low_water: usize,
    /// Scale up when any tenant's windowed p99 exceeds this (µs).
    pub p99_high_us: u64,
    /// Scale down only when every tenant's windowed p99 is at or below
    /// this (µs).
    pub p99_low_us: u64,
    /// Workers added or retired per decision.
    pub scale_step: usize,
    /// Ceiling on the autopilot's worker target — and the size of the
    /// static fleet the run measures against for comparison.
    pub surge_workers: usize,
    /// Reconcile passes to hold after each decision.
    pub cooldown_rounds: u64,
}

/// Memory-mode settings: the byte budget handed to the engine's
/// solver pool, so the run exercises size-aware eviction while the
/// telemetry spine reports phase timings and byte gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemorySettings {
    /// Byte budget for the solver pool (0 = unbounded: gauges are
    /// still measured, nothing is evicted for size).
    pub pool_byte_budget: u64,
}

/// What the runner does with each (scenario, cell) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Record the scenario, replay it through the engine, and compare
    /// against serial ground truth (the S5 discipline).
    Replay,
    /// Step the open-loop arrival rate until overload and report the
    /// maximum sustainable rate and knee latency (the S7 discipline).
    Ramp(RampSettings),
    /// Serve the scenario through a telemetry-wired reconciler with the
    /// autopilot enabled, phase by phase, and compare against a static
    /// fleet of the surge size (the S8 discipline).
    Autopilot(AutopilotSettings),
    /// Drive the scenario through a byte-budgeted, telemetry-wired
    /// engine and report per-phase substrate build time plus resident
    /// / peak / evicted pool bytes (the S10 discipline).
    Memory(MemorySettings),
}

/// A scenario the spec wants measured: a preset by name, or a fully
/// inline description.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioRef {
    /// One of the built-in presets ([`Scenario::preset`]).
    Preset {
        /// Preset name.
        name: String,
        /// Keep this scenario in smoke runs.
        smoke: bool,
    },
    /// An inline scenario: tenants, mutation rules, query mix, arrival
    /// — everything but the seed, which the spec supplies at run time.
    Inline {
        /// The scenario (its `seed` field is ignored; the spec seed is
        /// substituted when the experiment runs).
        scenario: Scenario,
        /// Keep this scenario in smoke runs.
        smoke: bool,
    },
}

impl ScenarioRef {
    /// The scenario's display name.
    pub fn name(&self) -> &str {
        match self {
            ScenarioRef::Preset { name, .. } => name,
            ScenarioRef::Inline { scenario, .. } => &scenario.name,
        }
    }

    /// Whether smoke runs keep this scenario.
    pub fn smoke(&self) -> bool {
        match self {
            ScenarioRef::Preset { smoke, .. } | ScenarioRef::Inline { smoke, .. } => *smoke,
        }
    }

    /// Resolves to a concrete [`Scenario`] seeded with `seed`.
    ///
    /// # Errors
    ///
    /// [`LabError::Schema`] on an unknown preset name (a validated spec
    /// never hits this).
    pub fn resolve(&self, seed: u64) -> Result<Scenario, LabError> {
        match self {
            ScenarioRef::Preset { name, .. } => Scenario::preset(name, seed)
                .ok_or_else(|| LabError::Schema(format!("unknown preset `{name}`"))),
            ScenarioRef::Inline { scenario, .. } => {
                let mut s = scenario.clone();
                s.seed = seed;
                Ok(s)
            }
        }
    }
}

/// One declarative experiment. See the [module docs](self).
#[derive(Clone, Debug, PartialEq)]
pub struct LabSpec {
    /// Experiment id, stamped on every row and the envelope (e.g.
    /// `"S5"`).
    pub name: String,
    /// Master seed for every scenario in the sweep.
    pub seed: u64,
    /// What the runner does per (scenario, cell).
    pub mode: RunMode,
    /// The sweep grid, in measurement order.
    pub cells: Vec<GridCell>,
    /// The scenarios, in measurement order.
    pub scenarios: Vec<ScenarioRef>,
}

impl LabSpec {
    /// The scenarios a run keeps: all of them, or the smoke-flagged
    /// subset.
    pub fn run_scenarios(&self, smoke: bool) -> Vec<&ScenarioRef> {
        self.scenarios
            .iter()
            .filter(|s| !smoke || s.smoke())
            .collect()
    }

    /// The grid cells a run keeps: all of them, or the smoke-flagged
    /// subset.
    pub fn run_cells(&self, smoke: bool) -> Vec<GridCell> {
        self.cells
            .iter()
            .copied()
            .filter(|c| !smoke || c.smoke)
            .collect()
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// [`LabError::Schema`] naming the first problem: empty name, no
    /// scenarios or cells (in full *or* smoke mode), duplicate scenario
    /// names, unknown preset names, inline scenarios without tenants,
    /// zero-sized cells, or ramp knobs that cannot probe (zero rate,
    /// empty rounds, margin over 100%).
    pub fn validate(&self) -> Result<(), LabError> {
        let fail = |reason: String| Err(LabError::Schema(reason));
        if self.name.is_empty() {
            return fail("experiment name is empty".into());
        }
        for smoke in [false, true] {
            let label = if smoke { "smoke" } else { "full" };
            if self.run_scenarios(smoke).is_empty() {
                return fail(format!("no scenarios in {label} mode"));
            }
            if self.run_cells(smoke).is_empty() {
                return fail(format!("no grid cells in {label} mode"));
            }
        }
        let mut names: Vec<&str> = Vec::new();
        for s in &self.scenarios {
            if names.contains(&s.name()) {
                return fail(format!("duplicate scenario name `{}`", s.name()));
            }
            names.push(s.name());
            match s {
                ScenarioRef::Preset { name, .. } => {
                    if Scenario::preset(name, 0).is_none() {
                        return fail(format!("unknown preset `{name}`"));
                    }
                }
                ScenarioRef::Inline { scenario, .. } => {
                    if scenario.tenants.is_empty() {
                        return fail(format!("scenario `{}` has no tenants", scenario.name));
                    }
                    if scenario.ticks == 0 {
                        return fail(format!("scenario `{}` has zero ticks", scenario.name));
                    }
                }
            }
        }
        for c in &self.cells {
            if c.workers == 0 || c.shards == 0 {
                return fail(format!(
                    "grid cell {}x{} has a zero dimension",
                    c.workers, c.shards
                ));
            }
        }
        if let RunMode::Ramp(r) = &self.mode {
            if r.initial_jps == 0 {
                return fail("ramp initial_jps is zero".into());
            }
            if r.round_jobs == 0 || r.max_rounds == 0 {
                return fail("ramp rounds are empty".into());
            }
            if r.margin_percent > 100 {
                return fail(format!("ramp margin {}% exceeds 100%", r.margin_percent));
            }
            if r.smoke_round_jobs == Some(0) || r.smoke_max_rounds == Some(0) {
                return fail("ramp smoke rounds are empty".into());
            }
        }
        if let RunMode::Autopilot(a) = &self.mode {
            if a.scale_step == 0 {
                return fail("autopilot scale_step is zero".into());
            }
            if a.queue_low_water >= a.queue_high_water {
                return fail(format!(
                    "autopilot queue_low_water {} must sit below queue_high_water {}",
                    a.queue_low_water, a.queue_high_water
                ));
            }
            if a.p99_low_us > a.p99_high_us {
                return fail(format!(
                    "autopilot p99_low_us {} exceeds p99_high_us {}",
                    a.p99_low_us, a.p99_high_us
                ));
            }
            if let Some(c) = self.cells.iter().find(|c| c.workers > a.surge_workers) {
                return fail(format!(
                    "autopilot surge_workers {} sits below the {}-worker grid cell",
                    a.surge_workers, c.workers
                ));
            }
        }
        Ok(())
    }

    /// Serializes the spec to canonical JSONL (byte-stable round trip
    /// through [`LabSpec::parse_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        line(&mut out, &{
            let mut f = vec![
                ("kind", Val::s("lab")),
                ("schema_version", Val::n(LAB_SCHEMA_VERSION)),
                ("name", Val::S(self.name.clone())),
                ("seed", Val::n(self.seed)),
            ];
            match &self.mode {
                RunMode::Replay => f.push(("mode", Val::s("replay"))),
                RunMode::Ramp(r) => {
                    f.push(("mode", Val::s("ramp")));
                    f.push(("initial_jps", Val::n(r.initial_jps)));
                    f.push(("increment_jps", Val::n(r.increment_jps)));
                    f.push(("round_jobs", Val::n(r.round_jobs as u64)));
                    f.push(("max_rounds", Val::n(r.max_rounds as u64)));
                    f.push(("margin_percent", Val::n(u64::from(r.margin_percent))));
                    if let Some(c) = r.p99_ceiling_us {
                        f.push(("p99_ceiling_us", Val::n(c)));
                    }
                    if let Some(j) = r.smoke_round_jobs {
                        f.push(("smoke_round_jobs", Val::n(j as u64)));
                    }
                    if let Some(m) = r.smoke_max_rounds {
                        f.push(("smoke_max_rounds", Val::n(m as u64)));
                    }
                }
                RunMode::Autopilot(a) => {
                    f.push(("mode", Val::s("autopilot")));
                    f.push(("queue_high_water", Val::n(a.queue_high_water as u64)));
                    f.push(("queue_low_water", Val::n(a.queue_low_water as u64)));
                    f.push(("p99_high_us", Val::n(a.p99_high_us)));
                    f.push(("p99_low_us", Val::n(a.p99_low_us)));
                    f.push(("scale_step", Val::n(a.scale_step as u64)));
                    f.push(("surge_workers", Val::n(a.surge_workers as u64)));
                    f.push(("cooldown_rounds", Val::n(a.cooldown_rounds)));
                }
                RunMode::Memory(m) => {
                    f.push(("mode", Val::s("memory")));
                    f.push(("pool_byte_budget", Val::n(m.pool_byte_budget)));
                }
            }
            f
        });
        for c in &self.cells {
            line(
                &mut out,
                &[
                    ("kind", Val::s("cell")),
                    ("workers", Val::n(c.workers as u64)),
                    ("shards", Val::n(c.shards as u64)),
                    ("smoke", Val::n(u64::from(c.smoke))),
                ],
            );
        }
        for s in &self.scenarios {
            match s {
                ScenarioRef::Preset { name, smoke } => line(
                    &mut out,
                    &[
                        ("kind", Val::s("preset")),
                        ("name", Val::S(name.clone())),
                        ("smoke", Val::n(u64::from(*smoke))),
                    ],
                ),
                ScenarioRef::Inline { scenario, smoke } => {
                    write_inline(&mut out, scenario, *smoke);
                }
            }
        }
        out
    }

    /// Parses a canonical-JSONL spec (inverse of [`LabSpec::to_jsonl`];
    /// runs [`LabSpec::validate`] on the result).
    ///
    /// # Errors
    ///
    /// [`LabError::Parse`] with a 1-based line number on malformed
    /// lines, unknown kinds/modes/rules, a wrong schema version, or
    /// structure errors (tenant line before any inline scenario);
    /// [`LabError::Schema`] when the parsed spec fails validation.
    pub fn parse_jsonl(text: &str) -> Result<LabSpec, LabError> {
        let mut header: Option<(String, u64, RunMode)> = None;
        let mut cells = Vec::new();
        let mut scenarios: Vec<ScenarioRef> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let fail = |reason: String| LabError::Parse {
                line: lineno,
                reason,
            };
            if raw.trim().is_empty() {
                continue;
            }
            let obj = Obj::parse(raw).map_err(&fail)?;
            match obj.str("kind").map_err(&fail)? {
                "lab" => {
                    if header.is_some() {
                        return Err(fail("duplicate lab header".into()));
                    }
                    let version = obj.u64("schema_version").map_err(&fail)?;
                    if version != LAB_SCHEMA_VERSION {
                        return Err(fail(format!(
                            "unsupported schema_version {version} (want {LAB_SCHEMA_VERSION})"
                        )));
                    }
                    let mode = match obj.str("mode").map_err(&fail)? {
                        "replay" => RunMode::Replay,
                        "ramp" => RunMode::Ramp(RampSettings {
                            initial_jps: obj.u64("initial_jps").map_err(&fail)?,
                            increment_jps: obj.u64("increment_jps").map_err(&fail)?,
                            round_jobs: obj.u64("round_jobs").map_err(&fail)? as usize,
                            max_rounds: obj.u64("max_rounds").map_err(&fail)? as usize,
                            margin_percent: obj.u64("margin_percent").map_err(&fail)? as u32,
                            p99_ceiling_us: obj.opt_u64("p99_ceiling_us").map_err(&fail)?,
                            smoke_round_jobs: obj
                                .opt_u64("smoke_round_jobs")
                                .map_err(&fail)?
                                .map(|v| v as usize),
                            smoke_max_rounds: obj
                                .opt_u64("smoke_max_rounds")
                                .map_err(&fail)?
                                .map(|v| v as usize),
                        }),
                        "autopilot" => RunMode::Autopilot(AutopilotSettings {
                            queue_high_water: obj.u64("queue_high_water").map_err(&fail)? as usize,
                            queue_low_water: obj.u64("queue_low_water").map_err(&fail)? as usize,
                            p99_high_us: obj.u64("p99_high_us").map_err(&fail)?,
                            p99_low_us: obj.u64("p99_low_us").map_err(&fail)?,
                            scale_step: obj.u64("scale_step").map_err(&fail)? as usize,
                            surge_workers: obj.u64("surge_workers").map_err(&fail)? as usize,
                            cooldown_rounds: obj.u64("cooldown_rounds").map_err(&fail)?,
                        }),
                        "memory" => RunMode::Memory(MemorySettings {
                            pool_byte_budget: obj.u64("pool_byte_budget").map_err(&fail)?,
                        }),
                        other => return Err(fail(format!("unknown mode `{other}`"))),
                    };
                    header = Some((
                        obj.str("name").map_err(&fail)?.to_string(),
                        obj.u64("seed").map_err(&fail)?,
                        mode,
                    ));
                }
                "cell" => cells.push(GridCell {
                    workers: obj.u64("workers").map_err(&fail)? as usize,
                    shards: obj.u64("shards").map_err(&fail)? as usize,
                    smoke: obj.u64("smoke").map_err(&fail)? != 0,
                }),
                "preset" => scenarios.push(ScenarioRef::Preset {
                    name: obj.str("name").map_err(&fail)?.to_string(),
                    smoke: obj.u64("smoke").map_err(&fail)? != 0,
                }),
                "scenario" => scenarios.push(ScenarioRef::Inline {
                    scenario: parse_scenario_line(&obj).map_err(&fail)?,
                    smoke: obj.u64("smoke").map_err(&fail)? != 0,
                }),
                "tenant" => match scenarios.last_mut() {
                    Some(ScenarioRef::Inline { scenario, .. }) => {
                        scenario.tenants.push(TenantSpec {
                            family: parse_family(&obj).map_err(&fail)?,
                            cap_range: (
                                obj.i64("cap_lo").map_err(&fail)?,
                                obj.i64("cap_hi").map_err(&fail)?,
                            ),
                            weight_range: (
                                obj.i64("weight_lo").map_err(&fail)?,
                                obj.i64("weight_hi").map_err(&fail)?,
                            ),
                        });
                    }
                    _ => return Err(fail("tenant line outside an inline scenario".into())),
                },
                "rule" => match scenarios.last_mut() {
                    Some(ScenarioRef::Inline { scenario, .. }) => {
                        scenario.mutations.push(parse_rule(&obj).map_err(&fail)?);
                    }
                    _ => return Err(fail("rule line outside an inline scenario".into())),
                },
                other => return Err(fail(format!("unknown line kind `{other}`"))),
            }
        }
        let (name, seed, mode) = header.ok_or(LabError::Parse {
            line: 0,
            reason: "missing lab header line".into(),
        })?;
        let spec = LabSpec {
            name,
            seed,
            mode,
            cells,
            scenarios,
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn write_inline(out: &mut String, s: &Scenario, smoke: bool) {
    let (arrival, rate, in_flight) = match s.arrival {
        Arrival::OpenLoop { queries_per_tick } => ("open", queries_per_tick, None),
        Arrival::ClosedLoop {
            queries_per_tick,
            max_in_flight,
        } => ("closed", queries_per_tick, Some(max_in_flight as u64)),
    };
    let mut f = vec![
        ("kind", Val::s("scenario")),
        ("name", Val::S(s.name.clone())),
        ("smoke", Val::n(u64::from(smoke))),
        ("ticks", Val::n(s.ticks)),
        ("arrival", Val::s(arrival)),
        ("rate", Val::n(rate)),
    ];
    if let Some(m) = in_flight {
        f.push(("max_in_flight", Val::n(m)));
    }
    f.extend([
        ("mix_max_flow", Val::n(u64::from(s.mix.max_flow))),
        ("mix_min_st_cut", Val::n(u64::from(s.mix.min_st_cut))),
        (
            "mix_approx_max_flow",
            Val::n(u64::from(s.mix.approx_max_flow)),
        ),
        (
            "mix_approx_min_st_cut",
            Val::n(u64::from(s.mix.approx_min_st_cut)),
        ),
        (
            "mix_global_min_cut",
            Val::n(u64::from(s.mix.global_min_cut)),
        ),
        ("mix_girth", Val::n(u64::from(s.mix.girth))),
        ("tenant_skew", Val::n(u64::from(s.tenant_skew))),
    ]);
    if let Some(d) = s.deadline_ticks {
        f.push(("deadline_ticks", Val::n(d)));
    }
    // Only the non-default stride is written, so pre-existing spec
    // files stay byte-stable through their round trip.
    if s.tenant_seed_stride != 3 {
        f.push(("seed_stride", Val::n(s.tenant_seed_stride)));
    }
    line(out, &f);
    for t in &s.tenants {
        let mut f = vec![("kind", Val::s("tenant"))];
        f.extend(family_fields(&t.family));
        f.extend([
            ("cap_lo", Val::i(t.cap_range.0)),
            ("cap_hi", Val::i(t.cap_range.1)),
            ("weight_lo", Val::i(t.weight_range.0)),
            ("weight_hi", Val::i(t.weight_range.1)),
        ]);
        line(out, &f);
    }
    for rule in &s.mutations {
        line(out, &rule_fields(rule));
    }
}

fn rule_fields(rule: &MutationRule) -> Vec<(&'static str, Val)> {
    match *rule {
        MutationRule::DiurnalWave {
            period,
            trough_percent,
        } => vec![
            ("kind", Val::s("rule")),
            ("rule", Val::s("diurnal_wave")),
            ("period", Val::n(period)),
            ("trough_percent", Val::n(u64::from(trough_percent))),
        ],
        MutationRule::RandomFailures { every, count } => vec![
            ("kind", Val::s("rule")),
            ("rule", Val::s("random_failures")),
            ("every", Val::n(every)),
            ("count", Val::n(count as u64)),
        ],
        MutationRule::RandomWeightSpikes {
            every,
            count,
            factor,
        } => vec![
            ("kind", Val::s("rule")),
            ("rule", Val::s("random_weight_spikes")),
            ("every", Val::n(every)),
            ("count", Val::n(count as u64)),
            ("factor", Val::n(u64::from(factor))),
        ],
        MutationRule::Storm {
            at,
            duration,
            percent,
        } => vec![
            ("kind", Val::s("rule")),
            ("rule", Val::s("storm")),
            ("at", Val::n(at)),
            ("duration", Val::n(duration)),
            ("percent", Val::n(u64::from(percent))),
        ],
    }
}

fn parse_rule(obj: &Obj) -> Result<MutationRule, String> {
    Ok(match obj.str("rule")? {
        "diurnal_wave" => MutationRule::DiurnalWave {
            period: obj.u64("period")?,
            trough_percent: obj.u64("trough_percent")? as u32,
        },
        "random_failures" => MutationRule::RandomFailures {
            every: obj.u64("every")?,
            count: obj.u64("count")? as usize,
        },
        "random_weight_spikes" => MutationRule::RandomWeightSpikes {
            every: obj.u64("every")?,
            count: obj.u64("count")? as usize,
            factor: obj.u64("factor")? as u32,
        },
        "storm" => MutationRule::Storm {
            at: obj.u64("at")?,
            duration: obj.u64("duration")?,
            percent: obj.u64("percent")? as u32,
        },
        other => return Err(format!("unknown rule `{other}`")),
    })
}

fn parse_scenario_line(obj: &Obj) -> Result<Scenario, String> {
    let rate = obj.u64("rate")?;
    let arrival = match obj.str("arrival")? {
        "open" => Arrival::OpenLoop {
            queries_per_tick: rate,
        },
        "closed" => Arrival::ClosedLoop {
            queries_per_tick: rate,
            max_in_flight: obj.u64("max_in_flight")? as usize,
        },
        other => return Err(format!("unknown arrival `{other}`")),
    };
    Ok(Scenario {
        name: obj.str("name")?.to_string(),
        // Placeholder; ScenarioRef::resolve substitutes the spec seed.
        seed: 0,
        tenants: Vec::new(),
        ticks: obj.u64("ticks")?,
        arrival,
        mix: QueryMix {
            max_flow: obj.u64("mix_max_flow")? as u32,
            min_st_cut: obj.u64("mix_min_st_cut")? as u32,
            approx_max_flow: obj.u64("mix_approx_max_flow")? as u32,
            approx_min_st_cut: obj.u64("mix_approx_min_st_cut")? as u32,
            global_min_cut: obj.u64("mix_global_min_cut")? as u32,
            girth: obj.u64("mix_girth")? as u32,
        },
        mutations: Vec::new(),
        tenant_skew: obj.u64("tenant_skew")? as u32,
        deadline_ticks: obj.opt_u64("deadline_ticks")?,
        tenant_seed_stride: obj.opt_u64("seed_stride")?.unwrap_or(3),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_workload::FamilySpec;

    fn sample_spec() -> LabSpec {
        let mut inline = Scenario::preset("rush-hour", 0).unwrap();
        inline.name = "custom-rush".into();
        inline.seed = 0;
        inline.tenants.push(TenantSpec {
            family: FamilySpec::Apollonian { n: 16 },
            cap_range: (2, 7),
            weight_range: (1, 5),
        });
        LabSpec {
            name: "SX".into(),
            seed: 42,
            mode: RunMode::Ramp(RampSettings {
                initial_jps: 200,
                increment_jps: 200,
                round_jobs: 48,
                max_rounds: 10,
                p99_ceiling_us: Some(250_000),
                margin_percent: 90,
                smoke_round_jobs: Some(16),
                smoke_max_rounds: Some(4),
            }),
            cells: vec![
                GridCell {
                    workers: 1,
                    shards: 1,
                    smoke: true,
                },
                GridCell {
                    workers: 4,
                    shards: 2,
                    smoke: false,
                },
            ],
            scenarios: vec![
                ScenarioRef::Preset {
                    name: "steady-state".into(),
                    smoke: true,
                },
                ScenarioRef::Inline {
                    scenario: inline,
                    smoke: false,
                },
            ],
        }
    }

    #[test]
    fn specs_round_trip_byte_stably() {
        let spec = sample_spec();
        let text = spec.to_jsonl();
        let parsed = LabSpec::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_jsonl(), text, "canonical form is byte-stable");
    }

    #[test]
    fn smoke_filters_scenarios_and_cells() {
        let spec = sample_spec();
        assert_eq!(spec.run_scenarios(false).len(), 2);
        assert_eq!(spec.run_cells(false).len(), 2);
        let smoke: Vec<&str> = spec.run_scenarios(true).iter().map(|s| s.name()).collect();
        assert_eq!(smoke, ["steady-state"]);
        assert_eq!(spec.run_cells(true), [spec.cells[0]]);
    }

    #[test]
    fn unknown_versions_kinds_modes_and_rules_are_refused() {
        let spec = sample_spec();
        let good = spec.to_jsonl();
        let future = good.replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(matches!(
            LabSpec::parse_jsonl(&future),
            Err(LabError::Parse { line: 1, .. })
        ));
        let bad_kind = format!("{good}{{\"kind\": \"mystery\"}}\n");
        assert!(LabSpec::parse_jsonl(&bad_kind).is_err());
        let bad_mode = good.replace("\"mode\": \"ramp\"", "\"mode\": \"warp\"");
        assert!(LabSpec::parse_jsonl(&bad_mode).is_err());
        let bad_rule = good.replace("\"rule\": \"diurnal_wave\"", "\"rule\": \"earthquake\"");
        assert!(LabSpec::parse_jsonl(&bad_rule).is_err());
        assert!(LabSpec::parse_jsonl("").is_err(), "missing header");
    }

    #[test]
    fn validation_refuses_unrunnable_specs() {
        let mut spec = sample_spec();
        spec.scenarios[0] = ScenarioRef::Preset {
            name: "no-such-preset".into(),
            smoke: true,
        };
        assert!(spec.validate().is_err());

        let mut spec = sample_spec();
        spec.cells.retain(|c| !c.smoke);
        assert!(spec.validate().is_err(), "smoke mode must keep a cell");

        let mut spec = sample_spec();
        if let ScenarioRef::Inline { scenario, .. } = &mut spec.scenarios[1] {
            scenario.name = "steady-state".into();
        }
        assert!(spec.validate().is_err(), "duplicate names are refused");

        let mut spec = sample_spec();
        if let RunMode::Ramp(r) = &mut spec.mode {
            r.margin_percent = 140;
        }
        assert!(spec.validate().is_err());
    }

    #[test]
    fn autopilot_specs_round_trip_and_validate() {
        let settings = AutopilotSettings {
            queue_high_water: 12,
            queue_low_water: 2,
            p99_high_us: 200_000,
            p99_low_us: 50_000,
            scale_step: 2,
            surge_workers: 6,
            cooldown_rounds: 1,
        };
        let spec = LabSpec {
            mode: RunMode::Autopilot(settings),
            ..sample_spec()
        };
        let text = spec.to_jsonl();
        let parsed = LabSpec::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_jsonl(), text, "canonical form is byte-stable");

        let mut bad = spec.clone();
        bad.mode = RunMode::Autopilot(AutopilotSettings {
            queue_low_water: 12,
            ..settings
        });
        assert!(bad.validate().is_err(), "no dead band");
        let mut bad = spec.clone();
        bad.mode = RunMode::Autopilot(AutopilotSettings {
            surge_workers: 2,
            ..settings
        });
        assert!(bad.validate().is_err(), "surge below the 4-worker cell");
    }

    #[test]
    fn inline_scenarios_resolve_with_the_spec_seed() {
        let spec = sample_spec();
        let resolved = spec.scenarios[1].resolve(7).unwrap();
        assert_eq!(resolved.seed, 7);
        assert_eq!(resolved.name, "custom-rush");
        assert_eq!(resolved.tenants.len(), 3, "preset tenants plus one");
        // Presets resolve through the library.
        let preset = spec.scenarios[0].resolve(7).unwrap();
        assert_eq!(preset, Scenario::preset("steady-state", 7).unwrap());
    }
}
