//! The regression gate: row-by-row comparison of two benchmark
//! envelopes with per-metric tolerances.
//!
//! `experiments compare <committed> <fresh>` parses both envelopes and
//! diffs them here. Metrics fall into three classes, because a gate
//! that treats a timing jitter like a correctness break is a gate
//! people turn off:
//!
//! * **exact** — determinism contracts and logical-round counts
//!   (`replay=serial`, `jobs`, round bills). These are machine
//!   independent; any drift is a real behavior change and fails the
//!   gate outright.
//! * **gated** — wall-clock rates and tail latencies. Rates (`*jps`)
//!   fail when they *drop* more than the throughput tolerance; p99
//!   latencies (`*p99-us`) fail when they *grow* more than the p99
//!   tolerance. Improvements never fail.
//! * **informational** — everything else (pool hits, efficiency
//!   ratios, probe round counts, medians): reported, never gating,
//!   because they legitimately vary with scheduling order or machine
//!   speed — p50 especially sits in single-digit-microsecond buckets
//!   where one histogram step is a 100% swing.
//!
//! Shape drift is also a failure: a row or metric present in the
//! committed envelope but missing fresh means the experiment changed
//! without a schema conversation.

use crate::envelope::Envelope;
use crate::error::LabError;

/// Gate thresholds. Defaults: a 10% throughput drop or a 25% p99
/// growth fails. CI smoke gates run on shared machines and pass wider
/// values explicitly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerances {
    /// Maximum tolerated drop of a `*jps` metric, in percent.
    pub max_throughput_drop_percent: f64,
    /// Maximum tolerated growth of a `*p99-us` metric, in percent.
    pub max_p99_growth_percent: f64,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            max_throughput_drop_percent: 10.0,
            max_p99_growth_percent: 25.0,
        }
    }
}

/// How the gate treats one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricClass {
    Exact,
    RateFloor,
    LatencyCeiling,
    Informational,
}

/// Deterministic, machine-independent metrics: equality required.
const EXACT_METRICS: [&str; 7] = [
    "replay=serial",
    "jobs",
    "respecs",
    "completed",
    "engine-query",
    "serial-query",
    "serial-substrate",
];

fn classify(name: &str) -> MetricClass {
    if EXACT_METRICS.contains(&name) {
        MetricClass::Exact
    } else if name.ends_with("jps") {
        MetricClass::RateFloor
    } else if name.ends_with("p99-us") {
        MetricClass::LatencyCeiling
    } else {
        MetricClass::Informational
    }
}

/// The outcome of one envelope comparison: a human-readable verdict
/// per row, and the regression count that decides the exit code.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// One verdict line per compared row (plus shape-drift lines).
    pub lines: Vec<String>,
    /// Failed checks across all rows.
    pub regressions: usize,
}

impl CompareReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }

    /// The full report as displayable text, ending in a PASS/FAIL
    /// summary line.
    pub fn render(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        if self.passed() {
            out.push_str("PASS: no regressions\n");
        } else {
            out.push_str(&format!("FAIL: {} regression(s)\n", self.regressions));
        }
        out
    }
}

/// Diffs `fresh` against `committed` row by row. See the
/// [module docs](self) for the metric classes.
///
/// # Errors
///
/// [`LabError::Schema`] when the two envelopes are not comparable:
/// different schema versions, experiments, seeds, or smoke flags.
pub fn compare(
    committed: &Envelope,
    fresh: &Envelope,
    tol: &Tolerances,
) -> Result<CompareReport, LabError> {
    let same = [
        (
            "schema_version",
            committed.schema_version == fresh.schema_version,
        ),
        ("experiment", committed.experiment == fresh.experiment),
        ("seed", committed.seed == fresh.seed),
        ("smoke", committed.smoke == fresh.smoke),
    ];
    if let Some((field, _)) = same.iter().find(|(_, ok)| !ok) {
        return Err(LabError::Schema(format!(
            "envelopes are not comparable: `{field}` differs"
        )));
    }
    let mut lines = Vec::new();
    let mut regressions = 0;
    for row in &committed.rows {
        let Some(other) = fresh.rows.iter().find(|r| r.instance == row.instance) else {
            regressions += 1;
            lines.push(format!("FAIL {} — row missing in fresh run", row.instance));
            continue;
        };
        let mut failures = Vec::new();
        let mut notes = Vec::new();
        for (name, want) in &row.values {
            let Some(got) = other.value(name) else {
                failures.push(format!("{name} missing in fresh run"));
                continue;
            };
            let shift = percent_change(*want, got);
            match classify(name) {
                MetricClass::Exact => {
                    if got != *want {
                        failures.push(format!("{name} {want} → {got} (exact metric drifted)"));
                    }
                }
                MetricClass::RateFloor => {
                    if got < *want * (1.0 - tol.max_throughput_drop_percent / 100.0) {
                        failures.push(format!(
                            "{name} {want:.1} → {got:.1} ({shift:+.1}%, limit -{:.0}%)",
                            tol.max_throughput_drop_percent
                        ));
                    } else {
                        notes.push(format!("{name} {want:.1} → {got:.1} ({shift:+.1}%)"));
                    }
                }
                MetricClass::LatencyCeiling => {
                    if got > *want * (1.0 + tol.max_p99_growth_percent / 100.0) {
                        failures.push(format!(
                            "{name} {want:.0} → {got:.0} ({shift:+.1}%, limit +{:.0}%)",
                            tol.max_p99_growth_percent
                        ));
                    } else {
                        notes.push(format!("{name} {want:.0} → {got:.0} ({shift:+.1}%)"));
                    }
                }
                MetricClass::Informational => {}
            }
        }
        if failures.is_empty() {
            let detail = if notes.is_empty() {
                "all exact metrics hold".to_string()
            } else {
                notes.join(", ")
            };
            lines.push(format!("ok   {} — {detail}", row.instance));
        } else {
            regressions += failures.len();
            lines.push(format!("FAIL {} — {}", row.instance, failures.join("; ")));
        }
    }
    for row in &fresh.rows {
        if !committed.rows.iter().any(|r| r.instance == row.instance) {
            regressions += 1;
            lines.push(format!(
                "FAIL {} — row absent from committed baseline",
                row.instance
            ));
        }
    }
    Ok(CompareReport { lines, regressions })
}

fn percent_change(want: f64, got: f64) -> f64 {
    if want == 0.0 {
        0.0
    } else {
        (got - want) / want * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::EnvRow;

    fn baseline() -> Envelope {
        Envelope::from_rows(
            "S5",
            42,
            true,
            vec![EnvRow {
                experiment: "S5".into(),
                instance: "steady-state, 1 wrk / 1 shd".into(),
                n: 30,
                d: 9,
                values: vec![
                    ("jobs".into(), 24.0),
                    ("replay=serial".into(), 1.0),
                    ("throughput-jps".into(), 1000.0),
                    ("p99-us".into(), 4000.0),
                    ("pool-hits".into(), 17.0),
                ],
            }],
        )
    }

    #[test]
    fn self_diff_passes() {
        let env = baseline();
        let report = compare(&env, &env, &Tolerances::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn jitter_within_tolerance_passes() {
        let mut fresh = baseline();
        fresh.rows[0].values[2].1 = 950.0; // -5% throughput
        fresh.rows[0].values[3].1 = 4500.0; // +12.5% p99
        fresh.rows[0].values[4].1 = 3.0; // informational churn
        let report = compare(&baseline(), &fresh, &Tolerances::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn synthetic_regression_fails_with_readable_verdicts() {
        let mut fresh = baseline();
        fresh.rows[0].values[2].1 = 800.0; // -20% throughput
        fresh.rows[0].values[3].1 = 6000.0; // +50% p99
        let report = compare(&baseline(), &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions, 2);
        let text = report.render();
        assert!(text.contains("FAIL steady-state, 1 wrk / 1 shd"));
        assert!(text.contains("throughput-jps 1000.0 → 800.0 (-20.0%, limit -10%)"));
        assert!(text.contains("p99-us 4000 → 6000 (+50.0%, limit +25%)"));
    }

    #[test]
    fn exact_metrics_and_shape_drift_always_fail() {
        let mut fresh = baseline();
        fresh.rows[0].values[1].1 = 0.0; // replay=serial broke
        let report = compare(&baseline(), &fresh, &Tolerances::default()).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("replay=serial 1 → 0"));

        let mut fresh = baseline();
        fresh.rows[0].instance = "renamed, 1 wrk / 1 shd".into();
        let report = compare(&baseline(), &fresh, &Tolerances::default()).unwrap();
        assert_eq!(
            report.regressions, 2,
            "missing committed row + extra fresh row"
        );

        let mut fresh = baseline();
        fresh.rows[0].values.remove(3);
        let report = compare(&baseline(), &fresh, &Tolerances::default()).unwrap();
        assert!(report.render().contains("p99-us missing"));
    }

    #[test]
    fn incomparable_envelopes_are_refused() {
        let mut fresh = baseline();
        fresh.seed = 7;
        assert!(matches!(
            compare(&baseline(), &fresh, &Tolerances::default()),
            Err(LabError::Schema(_))
        ));
        let mut fresh = baseline();
        fresh.smoke = false;
        assert!(compare(&baseline(), &fresh, &Tolerances::default()).is_err());
    }

    #[test]
    fn improvements_never_fail() {
        let mut fresh = baseline();
        fresh.rows[0].values[2].1 = 2000.0; // +100% throughput
        fresh.rows[0].values[3].1 = 100.0; // -97% p99
        let report = compare(&baseline(), &fresh, &Tolerances::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
    }
}
