//! Lab error taxonomy.

use duality_workload::WorkloadError;

/// Everything that can go wrong in the lab layer.
#[derive(Debug)]
pub enum LabError {
    /// A spec or envelope document failed to parse. `line` is 1-based
    /// (0 for whole-document problems, e.g. truncated JSON).
    Parse {
        /// 1-based line of the offending input (0: whole document).
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A well-formed document was refused: unknown schema version or
    /// kind, failed validation, or two envelopes that are not
    /// comparable.
    Schema(String),
    /// Running the experiment failed in the workload layer.
    Workload(WorkloadError),
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::Parse { line: 0, reason } => write!(f, "parse error: {reason}"),
            LabError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            LabError::Schema(reason) => write!(f, "schema refused: {reason}"),
            LabError::Workload(e) => write!(f, "workload failed: {e}"),
        }
    }
}

impl std::error::Error for LabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WorkloadError> for LabError {
    fn from(e: WorkloadError) -> LabError {
        LabError::Workload(e)
    }
}
