//! The versioned `BENCH_*.json` artifact: writer and parser.
//!
//! The bench harness has always *written* these envelopes —
//! `schema_version` plus provenance (experiment id, seed, smoke flag,
//! scenario list) around an array of measurement rows — but nothing
//! read them back. This module closes the loop: [`Envelope::to_json`]
//! is the canonical writer (the exact bytes `bench_artifact_json`
//! produced before the lab existed, so committed artifacts stay
//! diffable), and [`Envelope::parse`] reads a committed artifact back
//! for the regression gate ([`compare`](crate::compare)) and the
//! trajectory report ([`report`](crate::report)).
//!
//! Parsing refuses unknown schema versions: an envelope from a future
//! format is not silently misread as comparable data.

use crate::error::LabError;

/// Format version of the `BENCH_*.json` artifacts. Bump when the
/// envelope (not the row contents) changes shape, so trajectory tooling
/// can tell comparable points apart.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One measurement row: experiment id, instance label, instance size,
/// and named values.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvRow {
    /// Experiment id (e.g. `"S5"`).
    pub experiment: String,
    /// Workload description (`"<scenario>, <cell>"` by convention).
    pub instance: String,
    /// Number of vertices.
    pub n: usize,
    /// Hop diameter.
    pub d: usize,
    /// Named measurements, in presentation order.
    pub values: Vec<(String, f64)>,
}

impl EnvRow {
    /// Fetches a named value.
    pub fn value(&self, key: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// The part of the instance label before the first comma — the
    /// scenario name under the row-labeling convention.
    pub fn scenario(&self) -> &str {
        self.instance.split(',').next().unwrap_or("").trim()
    }

    /// Serializes the row as a one-line JSON object.
    pub fn to_json(&self) -> String {
        let values: Vec<String> = self
            .values
            .iter()
            .map(|(k, v)| format!("{}: {}", json_string(k), json_number(*v)))
            .collect();
        format!(
            "{{\"experiment\": {}, \"instance\": {}, \"n\": {}, \"d\": {}, \"values\": {{{}}}}}",
            json_string(&self.experiment),
            json_string(&self.instance),
            self.n,
            self.d,
            values.join(", ")
        )
    }
}

/// One parsed (or to-be-written) benchmark artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Format version ([`BENCH_SCHEMA_VERSION`] for anything this code
    /// writes; parsing refuses others).
    pub schema_version: u64,
    /// Experiment id (e.g. `"S5"`).
    pub experiment: String,
    /// The seed the run used.
    pub seed: u64,
    /// Whether this was a `--smoke` run.
    pub smoke: bool,
    /// Distinct scenario labels the rows cover, first-appearance order.
    pub scenarios: Vec<String>,
    /// The measurement rows.
    pub rows: Vec<EnvRow>,
}

impl Envelope {
    /// Wraps `rows` in a fresh envelope, deriving the scenario list
    /// from the row labels (the part before the first comma).
    pub fn from_rows(experiment: &str, seed: u64, smoke: bool, rows: Vec<EnvRow>) -> Envelope {
        let mut scenarios: Vec<String> = Vec::new();
        for row in &rows {
            let name = row.scenario();
            if !name.is_empty() && !scenarios.iter().any(|s| s == name) {
                scenarios.push(name.to_string());
            }
        }
        Envelope {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: experiment.to_string(),
            seed,
            smoke,
            scenarios,
            rows,
        }
    }

    /// Serializes the envelope (the canonical `BENCH_*.json` layout).
    pub fn to_json(&self) -> String {
        let scenario_list: Vec<String> = self.scenarios.iter().map(|s| json_string(s)).collect();
        let body: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("    {}", r.to_json()))
            .collect();
        format!(
            "{{\n  \"schema_version\": {},\n  \"experiment\": {},\n  \
             \"seed\": {},\n  \"smoke\": {},\n  \"scenarios\": [{}],\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.schema_version,
            json_string(&self.experiment),
            self.seed,
            self.smoke,
            scenario_list.join(", "),
            body.join(",\n")
        )
    }

    /// Parses a `BENCH_*.json` artifact.
    ///
    /// # Errors
    ///
    /// [`LabError::Parse`] on malformed JSON or missing/mistyped
    /// fields; [`LabError::Schema`] on an unknown `schema_version`.
    pub fn parse(text: &str) -> Result<Envelope, LabError> {
        let doc = Json::parse(text).map_err(|reason| LabError::Parse { line: 0, reason })?;
        let fail = |reason: String| LabError::Parse { line: 0, reason };
        let version = doc.num("schema_version").map_err(&fail)?.round() as u64;
        if version != BENCH_SCHEMA_VERSION {
            return Err(LabError::Schema(format!(
                "unsupported envelope schema_version {version} (want {BENCH_SCHEMA_VERSION})"
            )));
        }
        let scenarios = doc
            .arr("scenarios")
            .map_err(&fail)?
            .iter()
            .map(|v| match v {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(fail("scenarios entries must be strings".into())),
            })
            .collect::<Result<Vec<String>, LabError>>()?;
        let mut rows = Vec::new();
        for row in doc.arr("rows").map_err(&fail)? {
            let values = match row.field("values").map_err(&fail)? {
                Json::Obj(fields) => fields
                    .iter()
                    .map(|(k, v)| match v {
                        Json::Num(x) => Ok((k.clone(), *x)),
                        Json::Null => Ok((k.clone(), f64::NAN)),
                        _ => Err(fail(format!("value `{k}` is not a number"))),
                    })
                    .collect::<Result<Vec<(String, f64)>, LabError>>()?,
                _ => return Err(fail("row `values` is not an object".into())),
            };
            rows.push(EnvRow {
                experiment: row.str("experiment").map_err(&fail)?.to_string(),
                instance: row.str("instance").map_err(&fail)?.to_string(),
                n: row.num("n").map_err(&fail)?.round() as usize,
                d: row.num("d").map_err(&fail)?.round() as usize,
                values,
            });
        }
        Ok(Envelope {
            schema_version: version,
            experiment: doc.str("experiment").map_err(&fail)?.to_string(),
            seed: doc.num("seed").map_err(&fail)?.round() as u64,
            smoke: doc.bool("smoke").map_err(&fail)?,
            scenarios,
            rows,
        })
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Infinity/NaN; null keeps the document parseable.
        "null".to_string()
    }
}

// ---------------------------------------------------------------------
// A minimal recursive JSON reader. The flat JSONL codec the durable
// formats share cannot read the pretty-printed, nested envelopes, and
// the no-external-deps discipline rules out serde — so the lab carries
// its own ~100-line value parser. Accepts arbitrary whitespace; numbers
// are f64 throughout (the envelope's only numeric consumer).

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// An object, in source field order.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parses one JSON document (trailing content is an error).
    ///
    /// # Errors
    ///
    /// A human-readable reason on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut chars = text.chars().peekable();
        let value = parse_value(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next().is_some() {
            return Err("trailing content after document".into());
        }
        Ok(value)
    }

    /// The field `key` of an object.
    ///
    /// # Errors
    ///
    /// When `self` is not an object or the field is missing.
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err(format!("`{key}` lookup on a non-object")),
        }
    }

    /// The string field `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a string.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        match self.field(key)? {
            Json::Str(s) => Ok(s),
            _ => Err(format!("field `{key}` is not a string")),
        }
    }

    /// The numeric field `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a number.
    pub fn num(&self, key: &str) -> Result<f64, String> {
        match self.field(key)? {
            Json::Num(v) => Ok(*v),
            _ => Err(format!("field `{key}` is not a number")),
        }
    }

    /// The boolean field `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a boolean.
    pub fn bool(&self, key: &str) -> Result<bool, String> {
        match self.field(key)? {
            Json::Bool(v) => Ok(*v),
            _ => Err(format!("field `{key}` is not a boolean")),
        }
    }

    /// The array field `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing or not an array.
    pub fn arr(&self, key: &str) -> Result<&[Json], String> {
        match self.field(key)? {
            Json::Arr(v) => Ok(v),
            _ => Err(format!("field `{key}` is not an array")),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_value(chars: &mut Chars<'_>) -> Result<Json, String> {
    skip_ws(chars);
    match chars.peek() {
        Some('{') => parse_object(chars),
        Some('[') => parse_array(chars),
        Some('"') => Ok(Json::Str(parse_string(chars)?)),
        Some(c) if c.is_ascii_digit() || *c == '-' => parse_number(chars),
        Some(_) => parse_literal(chars),
        None => Err("unexpected end of document".into()),
    }
}

fn parse_object(chars: &mut Chars<'_>) -> Result<Json, String> {
    chars.next();
    let mut fields = Vec::new();
    loop {
        skip_ws(chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                return Ok(Json::Obj(fields));
            }
            Some('"') => {}
            _ => return Err("expected `\"` or `}` in object".into()),
        }
        let key = parse_string(chars)?;
        skip_ws(chars);
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after key `{key}`"));
        }
        fields.push((key, parse_value(chars)?));
        skip_ws(chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => return Ok(Json::Obj(fields)),
            _ => return Err("expected `,` or `}` in object".into()),
        }
    }
}

fn parse_array(chars: &mut Chars<'_>) -> Result<Json, String> {
    chars.next();
    let mut items = Vec::new();
    skip_ws(chars);
    if chars.peek() == Some(&']') {
        chars.next();
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars)?);
        skip_ws(chars);
        match chars.next() {
            Some(',') => {}
            Some(']') => return Ok(Json::Arr(items)),
            _ => return Err("expected `,` or `]` in array".into()),
        }
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected `\"`".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("unsupported escape `\\{other:?}`")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(chars: &mut Chars<'_>) -> Result<Json, String> {
    let mut text = String::new();
    while let Some(&c) = chars.peek() {
        match c {
            '0'..='9' | '-' | '+' | '.' | 'e' | 'E' => {
                text.push(c);
                chars.next();
            }
            _ => break,
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}`"))
}

fn parse_literal(chars: &mut Chars<'_>) -> Result<Json, String> {
    let mut word = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphabetic() {
            word.push(c);
            chars.next();
        } else {
            break;
        }
    }
    match word.as_str() {
        "true" => Ok(Json::Bool(true)),
        "false" => Ok(Json::Bool(false)),
        "null" => Ok(Json::Null),
        other => Err(format!("unsupported literal `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope::from_rows(
            "S5",
            42,
            true,
            vec![
                EnvRow {
                    experiment: "S5".into(),
                    instance: "steady-state, 1 wrk / 1 shd".into(),
                    n: 30,
                    d: 9,
                    values: vec![
                        ("jobs".into(), 24.0),
                        ("throughput-jps".into(), 1450.25),
                        ("p99-us".into(), 3200.0),
                    ],
                },
                EnvRow {
                    experiment: "S5".into(),
                    instance: "failover-storm, 2 wrk / 1 shd".into(),
                    n: 30,
                    d: 9,
                    values: vec![("jobs".into(), 36.0), ("replay=serial".into(), 1.0)],
                },
            ],
        )
    }

    #[test]
    fn envelopes_round_trip() {
        let env = sample();
        assert_eq!(env.scenarios, ["steady-state", "failover-storm"]);
        let text = env.to_json();
        let parsed = Envelope::parse(&text).unwrap();
        assert_eq!(parsed, env);
        assert_eq!(parsed.to_json(), text, "writer is canonical");
    }

    #[test]
    fn unknown_envelope_versions_are_refused() {
        let text = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(matches!(Envelope::parse(&text), Err(LabError::Schema(_))));
    }

    #[test]
    fn malformed_envelopes_report_reasons() {
        assert!(Envelope::parse("").is_err());
        assert!(Envelope::parse("{\"schema_version\": 1}").is_err());
        assert!(Envelope::parse("[1, 2").is_err());
        let text = sample().to_json();
        assert!(Envelope::parse(&format!("{text} trailing")).is_err());
    }

    #[test]
    fn the_reader_handles_general_json() {
        let doc = Json::parse(
            "{\"a\": [1, -2.5, 2e3], \"b\": {\"c\": \"x\\n\\u0041\"}, \"t\": true, \"z\": null}",
        )
        .unwrap();
        assert_eq!(doc.arr("a").unwrap().len(), 3);
        assert_eq!(doc.arr("a").unwrap()[2], Json::Num(2000.0));
        assert_eq!(doc.field("b").unwrap().str("c").unwrap(), "x\nA");
        assert!(doc.bool("t").unwrap());
        assert_eq!(doc.field("z").unwrap(), &Json::Null);
        assert!(Json::parse("{\"k\": nope}").is_err());
    }

    #[test]
    fn null_values_round_trip_as_nan() {
        let mut env = sample();
        env.rows[0].values.push(("inf".into(), f64::INFINITY));
        let text = env.to_json();
        assert!(text.contains("\"inf\": null"));
        let parsed = Envelope::parse(&text).unwrap();
        assert!(parsed.rows[0].value("inf").unwrap().is_nan());
    }
}
