//! The trajectory report: committed envelopes → one markdown document.
//!
//! `experiments report` parses every committed `BENCH_*.json` artifact
//! and renders them into `BENCH_TRAJECTORY.md`: per-experiment tables
//! (instance × metrics, in first-appearance order) plus a worker-scaling
//! digest built from the derived `scaling-efficiency` column. Because
//! the envelopes are regenerated and committed as the codebase evolves,
//! the committed report *is* the performance trajectory — re-rendered,
//! never hand-edited.

use crate::envelope::Envelope;

/// Renders `envelopes` (typically every committed `BENCH_*.json`,
/// sorted by experiment id) as one markdown document.
pub fn render_trajectory(envelopes: &[Envelope]) -> String {
    let mut out = String::from(
        "# Benchmark trajectory\n\n\
         Rendered by `experiments report` from the committed `BENCH_*.json`\n\
         envelopes — regenerate with `cargo run --release -p duality-bench --bin\n\
         experiments report`; do not edit by hand. Envelope schema and gating\n\
         policy: see `DESIGN.md` (Lab layer).\n",
    );
    for env in envelopes {
        out.push_str(&format!(
            "\n## {} (seed {}, {} run)\n\nScenarios: {}.\n\n",
            env.experiment,
            env.seed,
            if env.smoke { "smoke" } else { "full" },
            if env.scenarios.is_empty() {
                "—".to_string()
            } else {
                env.scenarios.join(", ")
            },
        ));
        let metrics = metric_union(env);
        out.push_str(&format!("| instance | n | D | {} |\n", metrics.join(" | ")));
        out.push_str(&format!("|---|---|---|{}\n", "---|".repeat(metrics.len())));
        for row in &env.rows {
            let cells: Vec<String> = metrics
                .iter()
                .map(|m| row.value(m).map_or("—".to_string(), fmt_value))
                .collect();
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                row.instance,
                row.n,
                row.d,
                cells.join(" | ")
            ));
        }
    }
    let digest = scaling_digest(envelopes);
    if !digest.is_empty() {
        out.push_str(
            "\n## Worker scaling digest\n\n\
             `scaling-efficiency` = headline rate at N workers ÷ rate at 1 worker\n\
             (same scenario and shard count). Perfect scaling reads N; a flat\n\
             wall reads ~1.0 everywhere.\n\n\
             | experiment | scenario | best cell | best efficiency |\n\
             |---|---|---|---|\n",
        );
        out.push_str(&digest);
    }
    out
}

/// Every metric name across the envelope's rows, first-appearance
/// order — rows of one experiment usually share a schema, but the
/// union keeps mixed-shape envelopes (e.g. phase-structured S6)
/// renderable.
fn metric_union(env: &Envelope) -> Vec<String> {
    let mut metrics: Vec<String> = Vec::new();
    for row in &env.rows {
        for (name, _) in &row.values {
            if !metrics.iter().any(|m| m == name) {
                metrics.push(name.clone());
            }
        }
    }
    metrics
}

fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        "—".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

fn scaling_digest(envelopes: &[Envelope]) -> String {
    let mut out = String::new();
    for env in envelopes {
        let mut scenarios: Vec<&str> = Vec::new();
        for row in &env.rows {
            let s = row.scenario();
            if row.value("scaling-efficiency").is_some() && !scenarios.contains(&s) {
                scenarios.push(s);
            }
        }
        for scenario in scenarios {
            let best = env
                .rows
                .iter()
                .filter(|r| r.scenario() == scenario)
                .filter_map(|r| Some((r, r.value("scaling-efficiency")?)))
                .max_by(|(_, a), (_, b)| a.total_cmp(b));
            if let Some((row, eff)) = best {
                let cell = row.instance.split_once(',').map_or("", |(_, c)| c.trim());
                out.push_str(&format!(
                    "| {} | {scenario} | {cell} | {eff:.2} |\n",
                    env.experiment
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::EnvRow;

    fn envelope() -> Envelope {
        Envelope::from_rows(
            "S7",
            42,
            false,
            vec![
                EnvRow {
                    experiment: "S7".into(),
                    instance: "steady-state, 1 wrk / 1 shd".into(),
                    n: 30,
                    d: 9,
                    values: vec![
                        ("max-sustainable-jps".into(), 1400.5),
                        ("knee-p99-us".into(), 3000.0),
                        ("scaling-efficiency".into(), 1.0),
                    ],
                },
                EnvRow {
                    experiment: "S7".into(),
                    instance: "steady-state, 4 wrk / 1 shd".into(),
                    n: 30,
                    d: 9,
                    values: vec![
                        ("max-sustainable-jps".into(), 1450.0),
                        ("knee-p99-us".into(), 2900.0),
                        ("scaling-efficiency".into(), 1.04),
                    ],
                },
            ],
        )
    }

    #[test]
    fn the_report_tables_every_row_and_metric() {
        let text = render_trajectory(&[envelope()]);
        assert!(text.contains("## S7 (seed 42, full run)"));
        assert!(text.contains("Scenarios: steady-state."));
        assert!(text.contains(
            "| instance | n | D | max-sustainable-jps | knee-p99-us | scaling-efficiency |"
        ));
        assert!(text.contains("| steady-state, 1 wrk / 1 shd | 30 | 9 | 1400.50 | 3000 | 1 |"));
        assert!(text.contains("| steady-state, 4 wrk / 1 shd | 30 | 9 | 1450 | 2900 | 1.04 |"));
    }

    #[test]
    fn the_digest_surfaces_the_best_scaling_cell() {
        let text = render_trajectory(&[envelope()]);
        assert!(text.contains("## Worker scaling digest"));
        assert!(text.contains("| S7 | steady-state | 4 wrk / 1 shd | 1.04 |"));
    }

    #[test]
    fn rows_without_a_metric_render_a_dash() {
        let mut env = envelope();
        env.rows[1].values.remove(1);
        let text = render_trajectory(&[env]);
        assert!(text.contains("| steady-state, 4 wrk / 1 shd | 30 | 9 | 1450 | — | 1.04 |"));
    }
}
