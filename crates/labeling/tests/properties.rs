//! Property-based tests: dual distance labels decode exactly the
//! Bellman–Ford distances of the weighted dual, for arbitrary weights,
//! thresholds and topologies — including negative lengths.

use duality_congest::{CostLedger, CostModel};
use duality_labeling::{DualSsspEngine, LabelingError};
use duality_planar::{dual::DualView, gen, FaceId, Weight, INF};
use proptest::prelude::*;

fn check_instance(
    g: &duality_planar::PlanarGraph,
    lengths: &[Weight],
    threshold: usize,
) -> Result<(), TestCaseError> {
    let cm = CostModel::new(g.num_vertices(), g.diameter());
    let mut ledger = CostLedger::new();
    let engine = DualSsspEngine::new(g, &cm, Some(threshold), &mut ledger);
    let view = DualView::new(g, lengths, |d| lengths[d.index()] < INF / 2);
    let labels = engine.labels(lengths, &mut ledger);
    // Reference from every source.
    let mut any_negative_cycle = false;
    let mut reference = Vec::new();
    for src in g.faces() {
        match view.bellman_ford(src) {
            Some(dist) => reference.push(dist),
            None => {
                any_negative_cycle = true;
                break;
            }
        }
    }
    match labels {
        Err(LabelingError::NegativeCycle { .. }) => {
            prop_assert!(any_negative_cycle, "spurious negative-cycle report");
        }
        Ok(labels) => {
            prop_assert!(!any_negative_cycle, "missed negative cycle");
            for (si, src) in g.faces().enumerate() {
                for f in g.faces() {
                    let want = reference[si][f.index()];
                    let want = (want < INF / 2).then_some(want);
                    prop_assert_eq!(labels.decode(src, f), want);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Non-negative random weights on random triangulated grids.
    #[test]
    fn labels_match_reference_nonnegative(
        w in 3usize..6,
        h in 3usize..6,
        seed in 0u64..500,
        threshold in 4usize..20,
        weights in prop::collection::vec(0i64..30, 200),
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let lengths: Vec<Weight> =
            (0..g.num_darts()).map(|i| weights[i % weights.len()]).collect();
        check_instance(&g, &lengths, threshold)?;
    }

    /// Mixed-sign weights: either the labels match Bellman–Ford everywhere
    /// or both agree a negative cycle exists.
    #[test]
    fn labels_match_reference_mixed_sign(
        w in 3usize..5,
        h in 3usize..5,
        seed in 0u64..500,
        threshold in 4usize..16,
        weights in prop::collection::vec(-3i64..12, 200),
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let lengths: Vec<Weight> =
            (0..g.num_darts()).map(|i| weights[i % weights.len()]).collect();
        check_instance(&g, &lengths, threshold)?;
    }

    /// Sparse duals: only forward darts carry arcs.
    #[test]
    fn labels_match_reference_directed_dual(
        n in 6usize..20,
        seed in 0u64..500,
        threshold in 4usize..16,
        weights in prop::collection::vec(1i64..20, 120),
    ) {
        let g = gen::apollonian(n, seed).unwrap();
        let lengths: Vec<Weight> = g
            .darts()
            .map(|d| {
                if d.is_forward() {
                    weights[d.edge() % weights.len()]
                } else {
                    INF
                }
            })
            .collect();
        check_instance(&g, &lengths, threshold)?;
    }

    /// Label sizes stay Õ(D) regardless of weights (Lemma 5.17).
    #[test]
    fn label_sizes_bounded(w in 4usize..8, h in 3usize..6, seed in 0u64..100) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, None, &mut ledger);
        let labels = engine.labels(&vec![1; g.num_darts()], &mut ledger).unwrap();
        let d = g.diameter() as u64;
        let logn = (g.num_vertices() as f64).log2().ceil() as u64;
        for f in g.faces() {
            prop_assert!(labels.label_words(FaceId(f.0)) <= 60 * d * logn * logn);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sparse irregular subgraphs (large merged faces, bridges, low
    /// connectivity) stress the face-part machinery: labels still decode
    /// exact distances.
    #[test]
    fn labels_on_sparse_subgraphs(
        w in 4usize..6,
        h in 4usize..6,
        keep_frac in 60usize..95,
        seed in 0u64..300,
        threshold in 4usize..14,
    ) {
        let full = (w - 1) * h + (h - 1) * w + (w - 1) * (h - 1);
        let target = (full * keep_frac / 100).max(w * h - 1);
        let g = gen::sparse_grid(w, h, target, seed).unwrap();
        let lengths: Vec<Weight> =
            (0..g.num_darts()).map(|i| ((i as i64 * 17) % 11) + 1).collect();
        check_instance(&g, &lengths, threshold)?;
    }
}
