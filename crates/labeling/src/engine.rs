//! The labeling engine: bottom-up label computation over the BDD.

use duality_bdd::{dual_bags, Bdd, BddOptions, DualBag};
use duality_congest::{CostLedger, CostModel};
use duality_planar::{Dart, FaceId, PlanarGraph, Weight, INF};
use std::collections::HashMap;

/// Errors from the labeling algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelingError {
    /// A negative cycle exists in the (weighted) dual graph; it was
    /// detected at the given bag (the leafmost bag containing it —
    /// Lemma 5.19). The Miller–Naor flow search uses this signal.
    NegativeCycle {
        /// Bag where the cycle was detected.
        bag: usize,
    },
}

impl std::fmt::Display for LabelingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabelingError::NegativeCycle { bag } => {
                write!(
                    f,
                    "negative cycle in the dual graph (detected at bag {bag})"
                )
            }
        }
    }
}

impl std::error::Error for LabelingError {}

/// Reusable dual-SSSP machinery: the BDD, dual bags and separators are
/// built once per topology; [`DualSsspEngine::labels`] is then called once
/// per weight assignment (the Miller–Naor binary search re-labels the same
/// engine `O(log λ)` times).
///
/// # Example
///
/// ```
/// use duality_labeling::DualSsspEngine;
/// use duality_congest::{CostLedger, CostModel};
/// use duality_planar::gen;
///
/// let g = gen::grid(6, 6).unwrap();
/// let cm = CostModel::new(g.num_vertices(), g.diameter());
/// let mut ledger = CostLedger::new();
/// let engine = DualSsspEngine::new(&g, &cm, None, &mut ledger);
/// let lengths = vec![1i64; g.num_darts()];
/// let labels = engine.labels(&lengths, &mut ledger).unwrap();
/// let f0 = duality_planar::FaceId(0);
/// assert_eq!(labels.decode(f0, f0), Some(0));
/// ```
pub struct DualSsspEngine<'g> {
    /// The communication graph.
    pub graph: &'g PlanarGraph,
    /// The decomposition.
    pub bdd: Bdd<'g>,
    /// Dual bag per bag id.
    pub duals: Vec<DualBag>,
    /// `F_X` per bag id (empty for leaves), as face ids.
    pub fx: Vec<Vec<FaceId>>,
    /// `F_X` face → index within `fx[bag]`.
    fx_index: Vec<HashMap<FaceId, usize>>,
    /// For non-leaf bags: which child (index into `children`) wholly
    /// contains each non-`F_X` node.
    child_of_node: Vec<HashMap<FaceId, usize>>,
    /// `S_X` dual arcs per non-leaf bag: `(from_face, to_face, dart)`.
    separator_arcs: Vec<Vec<(FaceId, FaceId, Dart)>>,
    cm: CostModel,
}

impl<'g> DualSsspEngine<'g> {
    /// Builds the engine: BDD construction (`Õ(D)` rounds per level,
    /// charged), dual bags, separators and edge classification.
    pub fn new(
        g: &'g PlanarGraph,
        cm: &CostModel,
        leaf_threshold: Option<usize>,
        ledger: &mut CostLedger,
    ) -> Self {
        let bdd = Bdd::build(
            g,
            &BddOptions {
                leaf_threshold,
                ..Default::default()
            },
            cm,
            ledger,
        );
        let duals: Vec<DualBag> = bdd.bags.iter().map(|b| DualBag::of_bag(g, b)).collect();
        let mut fx = vec![Vec::new(); bdd.bags.len()];
        let mut fx_index = vec![HashMap::new(); bdd.bags.len()];
        let mut child_of_node = vec![HashMap::new(); bdd.bags.len()];
        let mut separator_arcs = vec![Vec::new(); bdd.bags.len()];
        for bag in &bdd.bags {
            if bag.is_leaf() {
                continue;
            }
            let dual = &duals[bag.id];
            let f = dual_bags::dual_separator(&bdd, bag, dual);
            fx_index[bag.id] = f.iter().enumerate().map(|(i, &x)| (x, i)).collect();
            fx[bag.id] = f;
            // Node → wholly-containing child; separator arcs.
            let locus = dual_bags::classify_dual_edges(&bdd, bag);
            for arc in &dual.arcs {
                if locus[&arc.dart.edge()] == dual_bags::EdgeLocus::Separator {
                    separator_arcs[bag.id].push((
                        dual.nodes[arc.from],
                        dual.nodes[arc.to],
                        arc.dart,
                    ));
                }
            }
            for &node in &dual.nodes {
                if fx_index[bag.id].contains_key(&node) {
                    continue;
                }
                // A non-F_X node has all its edges in exactly one child; it
                // is a node of that child's dual bag.
                let ci = bag
                    .children
                    .iter()
                    .position(|&c| duals[c].node_index.contains_key(&node))
                    .expect("non-separator node lives in a child");
                child_of_node[bag.id].insert(node, ci);
            }
        }
        DualSsspEngine {
            graph: g,
            bdd,
            duals,
            fx,
            fx_index,
            child_of_node,
            separator_arcs,
            cm: *cm,
        }
    }

    /// The cost model the engine charges against.
    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// The `S_X` dual arcs of a bag: `(from_face, to_face, dart)` per
    /// separator-classified dual edge (empty for leaves).
    pub fn separator_arcs(&self, bag: usize) -> &[(FaceId, FaceId, Dart)] {
        &self.separator_arcs[bag]
    }

    /// Computes distance labels for the dual graph under the per-dart
    /// lengths `lengths` (use `>= INF/2` to mark a dart as absent).
    ///
    /// Charges the measured broadcast schedule on `ledger`.
    ///
    /// # Errors
    ///
    /// [`LabelingError::NegativeCycle`] if the weighted dual contains a
    /// negative cycle (the abort broadcast of `O(D)` rounds is charged).
    pub fn labels(
        &self,
        lengths: &[Weight],
        ledger: &mut CostLedger,
    ) -> Result<DualLabels<'_, 'g>, LabelingError> {
        assert_eq!(lengths.len(), self.graph.num_darts(), "one length per dart");
        let nbags = self.bdd.bags.len();
        let mut store = LabelStore {
            to_fx: vec![HashMap::new(); nbags],
            from_fx: vec![HashMap::new(); nbags],
            leaf_apsp: vec![HashMap::new(); nbags],
            label_words: vec![HashMap::new(); nbags],
        };

        // Bottom-up over levels; track the per-level maximum broadcast cost
        // (bags of one level run in parallel; Property 7 bounds the overlap
        // by a factor of 2).
        for level in (0..self.bdd.depth()).rev() {
            let mut level_cost: u64 = 0;
            for &bid in &self.bdd.levels[level] {
                let words = if self.bdd.bags[bid].is_leaf() {
                    self.label_leaf(bid, lengths, &mut store)
                        .inspect_err(|_e| {
                            ledger.charge("neg-cycle-abort", self.cm.bfs(self.cm.d));
                        })?
                } else {
                    self.label_internal(bid, lengths, &mut store)
                        .inspect_err(|_e| {
                            ledger.charge("neg-cycle-abort", self.cm.bfs(self.cm.d));
                        })?
                };
                let cost = self.cm.broadcast(self.bdd.bags[bid].bfs_depth, words);
                level_cost = level_cost.max(2 * cost);
            }
            ledger.charge("labeling-broadcast", level_cost);
        }
        Ok(DualLabels {
            engine: self,
            store,
        })
    }

    /// Leaf bag: collect the whole dual bag, Floyd–Warshall APSP locally.
    /// Returns the number of words broadcast (node ids + arcs).
    fn label_leaf(
        &self,
        bid: usize,
        lengths: &[Weight],
        store: &mut LabelStore,
    ) -> Result<u64, LabelingError> {
        let dual = &self.duals[bid];
        let n = dual.len();
        let mut dist = vec![vec![INF; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0;
        }
        for arc in &dual.arcs {
            let w = lengths[arc.dart.index()];
            if w >= INF / 2 {
                continue;
            }
            if w < dist[arc.from][arc.to] {
                dist[arc.from][arc.to] = w;
            }
        }
        floyd_warshall_in_place(&mut dist);
        for i in 0..n {
            if dist[i][i] < 0 {
                return Err(LabelingError::NegativeCycle { bag: bid });
            }
        }
        for (i, &f) in dual.nodes.iter().enumerate() {
            let row: Vec<Weight> = (0..n).map(|j| dist[i][j]).collect();
            let col: Vec<Weight> = (0..n).map(|j| dist[j][i]).collect();
            store.label_words[bid].insert(f, 2 * n as u64 + 1);
            store.leaf_apsp[bid].insert(f, (row, col));
        }
        Ok(self.bdd.bags[bid].edges.len() as u64 + 2 * dual.arcs.len() as u64)
    }

    /// Non-leaf bag: assemble the DDG from child labels + `S_X` dual arcs +
    /// zero links, Floyd–Warshall on it, then derive every node's distances
    /// to/from `F_X`. Returns the number of words broadcast.
    fn label_internal(
        &self,
        bid: usize,
        lengths: &[Weight],
        store: &mut LabelStore,
    ) -> Result<u64, LabelingError> {
        let bag = &self.bdd.bags[bid];
        let dual = &self.duals[bid];
        let fx = &self.fx[bid];
        let nf = fx.len();

        // DDG nodes: one per (child, F_X face present in that child's
        // dual); faces absent from every child get an orphan node.
        let mut h_nodes: Vec<(usize, FaceId)> = Vec::new(); // (child or usize::MAX, face)
        let mut h_of: HashMap<(usize, FaceId), usize> = HashMap::new();
        let mut rep: HashMap<FaceId, usize> = HashMap::new(); // canonical H node per face
        for &f in fx {
            let mut found = false;
            for (ci, &c) in bag.children.iter().enumerate() {
                if self.duals[c].node_index.contains_key(&f) {
                    let id = h_nodes.len();
                    h_nodes.push((ci, f));
                    h_of.insert((ci, f), id);
                    rep.entry(f).or_insert(id);
                    found = true;
                }
            }
            if !found {
                let id = h_nodes.len();
                h_nodes.push((usize::MAX, f));
                h_of.insert((usize::MAX, f), id);
                rep.insert(f, id);
            }
        }
        let hn = h_nodes.len();
        let mut h = vec![vec![INF; hn]; hn];
        for (i, row) in h.iter_mut().enumerate() {
            row[i] = 0;
        }
        let relax = |m: &mut Vec<Vec<Weight>>, a: usize, b: usize, w: Weight| {
            if w < m[a][b] {
                m[a][b] = w;
            }
        };

        // (a) Per-child cliques of label-decoded distances.
        for (i, &(ci, f)) in h_nodes.iter().enumerate() {
            if ci == usize::MAX {
                continue;
            }
            let child = bag.children[ci];
            for (j, &(cj, g)) in h_nodes.iter().enumerate() {
                if cj != ci || i == j {
                    continue;
                }
                let w = self.decode_at(child, f, g, store);
                if w < INF / 2 {
                    relax(&mut h, i, j, w);
                }
            }
        }
        // (b) S_X dual arcs.
        for &(from, to, dart) in &self.separator_arcs[bid] {
            let w = lengths[dart.index()];
            if w >= INF / 2 {
                continue;
            }
            relax(&mut h, rep[&from], rep[&to], w);
        }
        // (c) Zero links among the parts of the same face.
        for &f in fx {
            let parts: Vec<usize> = (0..bag.children.len())
                .filter_map(|ci| h_of.get(&(ci, f)).copied())
                .collect();
            for &a in &parts {
                for &b in &parts {
                    if a != b {
                        relax(&mut h, a, b, 0);
                    }
                }
            }
        }
        // Wait — the S_X arcs must attach to *every* part, not only the
        // representative; the zero links make attachment to one part
        // equivalent, so `rep` suffices. Floyd–Warshall:
        floyd_warshall_in_place(&mut h);
        for i in 0..hn {
            if h[i][i] < 0 {
                return Err(LabelingError::NegativeCycle { bag: bid });
            }
        }

        // Distances between F_X faces (via representatives; the zero links
        // make every part equivalent).
        let d_fx = |h: &Vec<Vec<Weight>>, f: FaceId, g: FaceId| -> Weight { h[rep[&f]][rep[&g]] };

        // Labels for every node of X*.
        for &node in &dual.nodes {
            let (to, from) = if self.fx_index[bid].contains_key(&node) {
                let to: Vec<Weight> = fx.iter().map(|&f| d_fx(&h, node, f)).collect();
                let from: Vec<Weight> = fx.iter().map(|&f| d_fx(&h, f, node)).collect();
                (to, from)
            } else {
                let ci = self.child_of_node[bid][&node];
                let child = bag.children[ci];
                // F_X parts living in this child.
                let parts: Vec<(usize, FaceId)> = h_nodes
                    .iter()
                    .filter(|&&(c, _)| c == ci)
                    .map(|&(_, f)| f)
                    .map(|f| (h_of[&(ci, f)], f))
                    .collect();
                let mut to = vec![INF; nf];
                let mut from = vec![INF; nf];
                for (k, &f) in fx.iter().enumerate() {
                    let mut best_to = INF;
                    let mut best_from = INF;
                    for &(hid, p) in &parts {
                        let g2p = self.decode_at(child, node, p, store);
                        if g2p < INF / 2 && h[hid][rep[&f]] < INF / 2 {
                            best_to = best_to.min(g2p + h[hid][rep[&f]]);
                        }
                        let p2g = self.decode_at(child, p, node, store);
                        if p2g < INF / 2 && h[rep[&f]][hid] < INF / 2 {
                            best_from = best_from.min(h[rep[&f]][hid] + p2g);
                        }
                    }
                    to[k] = best_to;
                    from[k] = best_from;
                }
                (to, from)
            };
            let child_words: u64 = if let Some(&ci) = self.child_of_node[bid].get(&node) {
                store.label_words[bag.children[ci]]
                    .get(&node)
                    .copied()
                    .unwrap_or(0)
            } else {
                0
            };
            store.label_words[bid].insert(node, 2 * nf as u64 + 1 + child_words);
            store.to_fx[bid].insert(node, to);
            store.from_fx[bid].insert(node, from);
        }

        // Broadcast words: the S_X dual arcs plus, for every F_X face, the
        // labels of all its parts computed in the children.
        let mut words = 2 * self.separator_arcs[bid].len() as u64;
        for &f in fx {
            for &c in &bag.children {
                if let Some(w) = store.label_words[c].get(&f) {
                    words += w;
                }
            }
        }
        Ok(words)
    }

    /// Decodes `dist(f → h)` within bag `bid` from the labels stored so far
    /// (both faces must be nodes of the bag's dual).
    fn decode_at(&self, bid: usize, f: FaceId, h: FaceId, store: &LabelStore) -> Weight {
        if f == h {
            return 0;
        }
        if self.bdd.bags[bid].is_leaf() {
            let (row, _) = &store.leaf_apsp[bid][&f];
            let j = self.duals[bid].node_index[&h];
            return row[j];
        }
        let to = &store.to_fx[bid][&f];
        let from = &store.from_fx[bid][&h];
        let mut best = INF;
        for (a, b) in to.iter().zip(from) {
            if *a < INF / 2 && *b < INF / 2 {
                best = best.min(a + b);
            }
        }
        // Both wholly inside the same child: the shortest path may avoid
        // F_X entirely (Lemma 5.15's other case).
        if let (Some(&cf), Some(&ch)) = (
            self.child_of_node[bid].get(&f),
            self.child_of_node[bid].get(&h),
        ) {
            if cf == ch {
                best = best.min(self.decode_at(self.bdd.bags[bid].children[cf], f, h, store));
            }
        }
        best
    }
}

/// One APSP row/column pair of a leaf bag's matrix.
type ApspRowCol = (Vec<Weight>, Vec<Weight>);

/// Per-bag label storage.
struct LabelStore {
    /// `to_fx[bag][node][k]` = `dist(node → fx[bag][k])` in `X*`.
    to_fx: Vec<HashMap<FaceId, Vec<Weight>>>,
    /// `from_fx[bag][node][k]` = `dist(fx[bag][k] → node)` in `X*`.
    from_fx: Vec<HashMap<FaceId, Vec<Weight>>>,
    /// Leaf bags: `(row, col)` of the APSP matrix per node.
    leaf_apsp: Vec<HashMap<FaceId, ApspRowCol>>,
    /// Label size in `O(log n)`-bit words per (bag, node) — the measured
    /// quantity behind Lemma 5.17 (`Õ(D)` bits).
    label_words: Vec<HashMap<FaceId, u64>>,
}

/// Computed distance labels for `G*` under one weight assignment.
pub struct DualLabels<'e, 'g> {
    engine: &'e DualSsspEngine<'g>,
    store: LabelStore,
}

impl<'e, 'g> DualLabels<'e, 'g> {
    /// The engine these labels were computed by.
    pub fn engine(&self) -> &'e DualSsspEngine<'g> {
        self.engine
    }

    /// Decodes the `G*` distance from face `f` to face `h` (labels only —
    /// Lemma 5.16). `None` if `h` is unreachable from `f`.
    pub fn decode(&self, f: FaceId, h: FaceId) -> Option<Weight> {
        let d = self.engine.decode_at(0, f, h, &self.store);
        (d < INF / 2).then_some(d)
    }

    /// Decodes the distance from `f` to `h` *within bag `bag`'s dual*
    /// (both faces must be nodes of that dual bag). Used by the directed
    /// global-min-cut recursion (Section 7), which runs its per-dart cycle
    /// search on the same per-bag DDGs the labels were built from.
    pub fn decode_in_bag(&self, bag: usize, f: FaceId, h: FaceId) -> Option<Weight> {
        let d = self.engine.decode_at(bag, f, h, &self.store);
        (d < INF / 2).then_some(d)
    }

    /// The label size of face `f` in `O(log n)`-bit words (Lemma 5.17:
    /// `Õ(D)`).
    pub fn label_words(&self, f: FaceId) -> u64 {
        self.store.label_words[0].get(&f).copied().unwrap_or(0)
    }

    /// Distances from `source` to every face, by broadcasting the source
    /// label (`D + |label|` rounds, charged) and decoding locally.
    pub fn distances_from(&self, source: FaceId, ledger: &mut CostLedger) -> Vec<Option<Weight>> {
        let cm = &self.engine.cm;
        ledger.charge(
            "sssp-label-broadcast",
            cm.broadcast(cm.d, self.label_words(source)),
        );
        self.engine
            .graph
            .faces()
            .map(|f| self.decode(source, f))
            .collect()
    }
}

fn floyd_warshall_in_place(d: &mut [Vec<Weight>]) {
    // When a negative cycle is present (the Miller–Naor infeasibility
    // signal), Floyd–Warshall entries can compound geometrically downward;
    // clamping at -INF keeps the arithmetic in range while preserving the
    // negative diagonal that the caller checks.
    let n = d.len();
    for k in 0..n {
        for i in 0..n {
            let dik = d[i][k];
            if dik >= INF / 2 {
                continue;
            }
            for j in 0..n {
                let cand = (dik + d[k][j]).max(-INF);
                if d[k][j] < INF / 2 && cand < d[i][j] {
                    d[i][j] = cand;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::dual::DualView;
    use duality_planar::gen;

    fn check_against_reference(g: &PlanarGraph, lengths: &[Weight], threshold: Option<usize>) {
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(g, &cm, threshold, &mut ledger);
        let labels = engine
            .labels(lengths, &mut ledger)
            .expect("no negative cycle");
        let view = DualView::new(g, lengths, |d| lengths[d.index()] < INF / 2);
        for src in g.faces() {
            let reference = view.bellman_ford(src).expect("no negative cycle");
            for f in g.faces() {
                let got = labels.decode(src, f);
                let want = (reference[f.index()] < INF / 2).then_some(reference[f.index()]);
                assert_eq!(got, want, "dist({src:?} → {f:?})");
            }
        }
    }

    #[test]
    fn labels_match_bellman_ford_unit_weights() {
        let g = gen::grid(5, 5).unwrap();
        let lengths = vec![1; g.num_darts()];
        check_against_reference(&g, &lengths, Some(6));
    }

    #[test]
    fn labels_match_bellman_ford_random_weights() {
        for seed in 0..4u64 {
            let g = gen::diag_grid(5, 4, seed).unwrap();
            let lengths: Vec<Weight> = (0..g.num_darts())
                .map(|i| ((i as i64 * 31 + seed as i64 * 7) % 17) + 1)
                .collect();
            check_against_reference(&g, &lengths, Some(8));
        }
    }

    #[test]
    fn labels_match_with_negative_lengths() {
        // Random weights, some negative, rejected if they create negative
        // cycles (checked by the reference first).
        for seed in 0..6u64 {
            let g = gen::grid(4, 4).unwrap();
            let lengths: Vec<Weight> = (0..g.num_darts())
                .map(|i| ((i as i64 * 13 + seed as i64 * 5) % 9) - 1)
                .collect();
            let view = DualView::new(&g, &lengths, |_| true);
            if view.bellman_ford(FaceId(0)).is_none() {
                continue; // negative cycle: covered by the detection test
            }
            check_against_reference(&g, &lengths, Some(6));
        }
    }

    #[test]
    fn negative_cycle_detected() {
        let g = gen::grid(4, 4).unwrap();
        let lengths = vec![-1; g.num_darts()];
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, Some(6), &mut ledger);
        let err = engine.labels(&lengths, &mut ledger).err();
        assert!(matches!(err, Some(LabelingError::NegativeCycle { .. })));
    }

    #[test]
    fn absent_darts_are_ignored() {
        let g = gen::grid(4, 3).unwrap();
        // Keep only forward darts: the dual becomes a one-arc-per-edge
        // digraph.
        let lengths: Vec<Weight> = g
            .darts()
            .map(|d| if d.is_forward() { 2 } else { INF })
            .collect();
        check_against_reference(&g, &lengths, Some(6));
    }

    #[test]
    fn label_sizes_are_otilde_d() {
        let g = gen::grid(8, 8).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, None, &mut ledger);
        let labels = engine.labels(&vec![1; g.num_darts()], &mut ledger).unwrap();
        let d = g.diameter() as u64;
        let logn = (g.num_vertices() as f64).log2().ceil() as u64;
        for f in g.faces() {
            let w = labels.label_words(f);
            assert!(w > 0);
            assert!(
                w <= 40 * d * logn * logn,
                "label of {f:?} is {w} words (D = {d}, log n = {logn})"
            );
        }
    }

    #[test]
    fn deep_decomposition_still_correct() {
        // Tiny threshold forces many levels.
        let g = gen::diag_grid(6, 6, 3).unwrap();
        let lengths: Vec<Weight> = (0..g.num_darts()).map(|i| (i as i64 % 7) + 1).collect();
        check_against_reference(&g, &lengths, Some(4));
    }

    #[test]
    fn rounds_charged_grow_with_levels() {
        let g = gen::grid(8, 8).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut l1 = CostLedger::new();
        let e1 = DualSsspEngine::new(&g, &cm, Some(1000), &mut l1); // single leaf
        e1.labels(&vec![1; g.num_darts()], &mut l1).unwrap();
        let mut l2 = CostLedger::new();
        let e2 = DualSsspEngine::new(&g, &cm, Some(8), &mut l2); // deep
        e2.labels(&vec![1; g.num_darts()], &mut l2).unwrap();
        assert!(l2.phase_total("labeling-broadcast") > 0);
        assert!(l1.phase_total("labeling-broadcast") > 0);
    }
}
