//! Dual distance labeling and dual SSSP (paper, Section 5).
//!
//! Every node of the dual graph `G*` (face of `G`) receives an `Õ(D)`-word
//! *distance label* such that the `G*`-distance between any two nodes can be
//! decoded from their two labels alone (Theorem 2.1). Labels are computed
//! bottom-up over the Bounded Diameter Decomposition:
//!
//! * **leaf bags** collect their whole (small) dual bag and solve APSP
//!   locally;
//! * **non-leaf bags** broadcast the labels of the dual-separator nodes
//!   `F_X` computed in their children plus the `S_X` dual arcs, and every
//!   vertex locally assembles a *dense distance graph* (DDG) — per-child
//!   cliques of label-decoded distances, the `S_X` dual arcs, and
//!   zero-weight links joining the parts of a shattered face — from which
//!   the label distances to `F_X` follow (Section 5.3).
//!
//! Negative edge lengths are supported throughout (the Miller–Naor flow
//! reduction needs them); a negative cycle is detected at the leafmost bag
//! containing it (Lemma 5.19) and reported as an error.
//!
//! Round charges follow the paper's broadcast schedule with *measured*
//! quantities: per level, the charge is the maximum over same-level bags of
//! `bag BFS depth + number of words broadcast` (times 2 for Property 7's
//! constant overhead), summed over levels — so the `Õ(D²)` total is an
//! empirical output of the experiments, not an assumed formula.

mod engine;
pub mod sssp;

pub use engine::{DualLabels, DualSsspEngine, LabelingError};
