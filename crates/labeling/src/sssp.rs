//! Dual single-source shortest paths (paper, Section 5.4): broadcast the
//! source label, decode distances locally, and mark the SSSP tree arcs with
//! one part-wise aggregation.

use crate::engine::DualLabels;
use duality_congest::CostLedger;
use duality_planar::{Dart, FaceId, Weight, INF};

/// A dual SSSP tree from a source face.
#[derive(Clone, Debug)]
pub struct DualSsspTree {
    /// The source node.
    pub source: FaceId,
    /// `dist[f]` = distance from the source to face `f` (`None` if
    /// unreachable).
    pub dist: Vec<Option<Weight>>,
    /// For each reachable non-source face, the dart whose dual arc enters
    /// it on the shortest-path tree (Lemma 2.2: every vertex knows which of
    /// its incident edges have their dual in the tree).
    pub parent_dart: Vec<Option<Dart>>,
}

/// Computes a dual SSSP tree from `source` given computed labels and the
/// same per-dart lengths used to build them.
///
/// Charges the source-label broadcast plus one dual part-wise aggregation
/// (tree-arc marking).
pub fn dual_sssp(
    labels: &DualLabels<'_, '_>,
    lengths: &[Weight],
    source: FaceId,
    ledger: &mut CostLedger,
) -> DualSsspTree {
    let g = labels.engine().graph;
    let cm = labels.engine().cost_model();
    let dist = labels.distances_from(source, ledger);
    // Tree marking: one PA task over G* (each node picks the incident arc
    // minimizing dist(s, f) + w(f → g)).
    ledger.charge("sssp-mark-tree", cm.dual_part_wise_aggregation());
    let mut parent_dart: Vec<Option<Dart>> = vec![None; g.num_faces()];
    for d in g.darts() {
        let w = lengths[d.index()];
        if w >= INF / 2 {
            continue;
        }
        let (from, to) = g.dual_arc(d);
        if to == source {
            continue;
        }
        let Some(df) = dist[from.index()] else {
            continue;
        };
        let Some(dt) = dist[to.index()] else { continue };
        if df + w == dt {
            let better = match parent_dart[to.index()] {
                None => true,
                Some(prev) => d.index() < prev.index(),
            };
            if better {
                parent_dart[to.index()] = Some(d);
            }
        }
    }
    DualSsspTree {
        source,
        dist,
        parent_dart,
    }
}

impl DualSsspTree {
    /// Checks the SSSP-tree invariant: every reachable face's distance is
    /// its parent's distance plus the parent arc weight.
    pub fn validate(&self, g: &duality_planar::PlanarGraph, lengths: &[Weight]) -> bool {
        for f in g.faces() {
            if f == self.source {
                if self.dist[f.index()] != Some(0) {
                    return false;
                }
                continue;
            }
            match (self.dist[f.index()], self.parent_dart[f.index()]) {
                (None, None) => {}
                (Some(df), Some(d)) => {
                    let (from, to) = g.dual_arc(d);
                    if to != f {
                        return false;
                    }
                    let Some(dp) = self.dist[from.index()] else {
                        return false;
                    };
                    if dp + lengths[d.index()] != df {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DualSsspEngine;
    use duality_congest::{CostLedger, CostModel};
    use duality_planar::gen;

    #[test]
    fn sssp_tree_valid_on_random_weights() {
        for seed in 0..3u64 {
            let g = gen::diag_grid(5, 5, seed).unwrap();
            let lengths: Vec<Weight> = (0..g.num_darts())
                .map(|i| ((i as i64 * 11) % 13) + 1)
                .collect();
            let cm = CostModel::new(g.num_vertices(), g.diameter());
            let mut ledger = CostLedger::new();
            let engine = DualSsspEngine::new(&g, &cm, Some(10), &mut ledger);
            let labels = engine.labels(&lengths, &mut ledger).unwrap();
            let tree = dual_sssp(&labels, &lengths, FaceId(0), &mut ledger);
            assert!(tree.validate(&g, &lengths));
            assert!(ledger.phase_total("sssp-mark-tree") > 0);
        }
    }

    #[test]
    fn sssp_with_negative_lengths_valid() {
        let g = gen::grid(4, 4).unwrap();
        // Mildly negative backward darts, no negative cycles (checked via
        // engine result).
        let lengths: Vec<Weight> = g
            .darts()
            .map(|d| if d.is_forward() { 4 } else { -1 })
            .collect();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, Some(8), &mut ledger);
        if let Ok(labels) = engine.labels(&lengths, &mut ledger) {
            let tree = dual_sssp(&labels, &lengths, FaceId(0), &mut ledger);
            assert!(tree.validate(&g, &lengths));
        }
    }
}

impl DualSsspTree {
    /// Reconstructs the tree path from the source to `f` as the sequence of
    /// darts whose duals are traversed (empty for the source itself).
    /// Returns `None` if `f` is unreachable.
    ///
    /// Used by the min-cut pipelines to turn SSSP trees into explicit
    /// cut/cycle certificates.
    pub fn path_to(&self, g: &duality_planar::PlanarGraph, f: FaceId) -> Option<Vec<Dart>> {
        self.dist[f.index()]?;
        let mut path = Vec::new();
        let mut cur = f;
        while cur != self.source {
            let d = self.parent_dart[cur.index()]?;
            path.push(d);
            cur = g.face_of(d);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use crate::DualSsspEngine;
    use duality_congest::{CostLedger, CostModel};
    use duality_planar::gen;

    #[test]
    fn paths_have_matching_lengths() {
        let g = gen::diag_grid(5, 4, 2).unwrap();
        let lengths: Vec<Weight> = (0..g.num_darts()).map(|i| (i as i64 % 5) + 1).collect();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, Some(8), &mut ledger);
        let labels = engine.labels(&lengths, &mut ledger).unwrap();
        let tree = dual_sssp(&labels, &lengths, FaceId(0), &mut ledger);
        for f in g.faces() {
            let path = tree.path_to(&g, f).expect("dual is strongly connected");
            let total: Weight = path.iter().map(|d| lengths[d.index()]).sum();
            assert_eq!(Some(total), tree.dist[f.index()], "{f:?}");
            // The path is dual-vertex chained.
            let mut cur = FaceId(0);
            for &d in &path {
                assert_eq!(g.face_of(d), cur);
                cur = g.face_of(d.rev());
            }
            assert_eq!(cur, f);
        }
    }

    #[test]
    fn source_path_is_empty() {
        let g = gen::grid(3, 3).unwrap();
        let lengths = vec![1; g.num_darts()];
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, None, &mut ledger);
        let labels = engine.labels(&lengths, &mut ledger).unwrap();
        let tree = dual_sssp(&labels, &lengths, FaceId(2), &mut ledger);
        assert_eq!(tree.path_to(&g, FaceId(2)), Some(Vec::new()));
    }
}
