//! Integration tests of the scenario workload subsystem through the
//! `duality` façade: trace round-trip, and the record → replay
//! determinism contract across the worker × shard sweep.

use duality::workload::driver::{self, DriverConfig};
use duality::workload::{Scenario, Trace, TraceEvent, WorkloadError, PRESET_NAMES};

/// The headline contract: one recorded trace, replayed against every
/// worker/shard configuration of the engine, produces outcome
/// fingerprint sequences identical to each other *and* to serial
/// `PlanarSolver::run` ground truth.
#[test]
fn trace_replay_is_deterministic_across_worker_shard_sweep() {
    let trace = Scenario::preset("failover-storm", 13)
        .unwrap()
        .record()
        .unwrap();
    let serial = driver::run_serial(&trace).unwrap();
    assert_eq!(serial.fingerprints.len(), trace.query_count());
    for workers in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            let report = driver::drive(
                &trace,
                &DriverConfig {
                    workers,
                    shards,
                    ..DriverConfig::default()
                },
            )
            .unwrap();
            assert_eq!(report.failed, 0, "{workers}w/{shards}s: nothing fails");
            let replayed: Vec<u64> = report
                .fingerprints
                .iter()
                .map(|f| f.expect("deadline-free replays complete every job"))
                .collect();
            assert_eq!(
                replayed, serial.fingerprints,
                "{workers} workers / {shards} shards must replay bit-for-bit"
            );
            assert_eq!(report.metrics.completed as usize, trace.query_count());
        }
    }
}

/// A replayed trace that went through the JSONL round-trip first is the
/// same traffic: parse(serialize(trace)) drives to the same outcomes.
#[test]
fn serialized_traces_replay_identically() {
    let trace = Scenario::preset("respec-heavy", 29)
        .unwrap()
        .record()
        .unwrap();
    let restored = Trace::parse_jsonl(&trace.to_jsonl()).unwrap();
    assert_eq!(restored, trace);
    let a = driver::run_serial(&trace).unwrap();
    let b = driver::run_serial(&restored).unwrap();
    assert_eq!(a.fingerprints, b.fingerprints);
    assert_eq!(
        (a.query_rounds, a.substrate_rounds, a.solvers),
        (b.query_rounds, b.substrate_rounds, b.solvers)
    );
}

/// Round-trip parse fidelity for every preset, plus the versioning and
/// tamper guards of the format.
#[test]
fn trace_round_trip_and_format_guards() {
    for name in PRESET_NAMES {
        let trace = Scenario::preset(name, 17).unwrap().record().unwrap();
        let text = trace.to_jsonl();
        let parsed = Trace::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, trace, "{name}: lossless round-trip");
        assert_eq!(parsed.to_jsonl(), text, "{name}: stable re-serialization");
        assert!(parsed.materialize().is_ok(), "{name}: keys verify");

        // Version guard: a bumped schema_version is refused.
        let bumped = text.replacen("\"schema_version\": 1", "\"schema_version\": 2", 1);
        assert!(
            matches!(
                Trace::parse_jsonl(&bumped),
                Err(WorkloadError::Parse { line: 1, .. })
            ),
            "{name}: unknown versions are refused"
        );
    }

    // Tamper guard: rewriting a recorded event key breaks materialization.
    let trace = Scenario::preset("failover-storm", 17)
        .unwrap()
        .record()
        .unwrap();
    let mut tampered = trace.clone();
    for event in &mut tampered.events {
        if let TraceEvent::Query { key, .. } = event {
            *key = "0000000000000000/0000000000000000".into();
            break;
        }
    }
    assert!(matches!(
        tampered.materialize(),
        Err(WorkloadError::KeyMismatch { .. })
    ));
}

/// The scenario layer is reachable through the façade re-exports, and
/// recording is a pure function of (description, seed).
#[test]
fn facade_reexports_and_recording_determinism() {
    let scenario: duality::Scenario = Scenario::preset("multi-tenant-skew", 3).unwrap();
    let a: duality::Trace = scenario.record().unwrap();
    let b = scenario.record().unwrap();
    assert_eq!(a, b);
    let _config = duality::DriverConfig::default();
    // All nine presets exist and mix families/mutations as documented.
    assert_eq!(Scenario::presets(3).len(), 9);
}
