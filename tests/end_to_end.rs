//! Cross-crate integration tests: the full pipelines of all five theorems
//! on shared workloads, exercised through the public `PlanarSolver` façade
//! of the meta-crate.

use duality::baselines::{cuts, flow as bflow, girth as bgirth};
use duality::core::verify;
use duality::planar::{gen, Weight};
use duality::PlanarSolver;

/// Theorem 1.2 + Theorem 6.1 end to end: flow value matches Dinic, the
/// assignment is feasible, and the min cut certifies it — both queries on
/// one solver sharing one decomposition.
#[test]
fn flow_and_cut_pipeline() {
    for seed in 0..3u64 {
        let g = gen::diag_grid(6, 5, seed).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 0, 12, seed + 1);
        let (s, t) = (0, g.num_vertices() - 1);
        let solver = PlanarSolver::builder(&g)
            .capacities(caps.clone())
            .build()
            .unwrap();

        let flow = solver.max_flow(s, t).unwrap();
        assert_eq!(
            flow.value,
            bflow::planar_max_flow_reference(&g, &caps, s, t)
        );
        verify::assert_valid_flow(&g, &caps, &flow.flow, s, t, flow.value);

        let cut = solver.min_st_cut(s, t).unwrap();
        assert_eq!(cut.value, flow.value, "max-flow min-cut theorem");
        let cut_cap: Weight = cut.cut_darts.iter().map(|d| caps[d.index()]).sum();
        assert_eq!(cut_cap, flow.value, "cut darts are exactly saturated");

        assert_eq!(
            solver.stats().engine_builds,
            1,
            "flow and cut shared the decomposition"
        );
    }
}

/// Theorem 1.3 + Theorem 6.2 end to end on st-planar instances.
#[test]
fn approx_flow_and_cut_pipeline() {
    for k in [0u64, 3] {
        let g = gen::grid(6, 5).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 15, k + 5);
        let (s, t) = (0, 5); // two corners of the first row: outer face
        let exact = bflow::planar_max_flow_reference(&g, &caps, s, t);
        let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();

        let flow = solver.approx_max_flow(s, t, k).unwrap();
        assert!(flow.value_numer <= exact * flow.denom);
        if k > 0 {
            let kk = k as Weight;
            assert!(flow.value_numer * (kk + 1) >= exact * flow.denom * kk);
        } else {
            assert_eq!(flow.value_numer, exact);
        }

        let cut = solver.approx_min_st_cut(s, t, k).unwrap();
        assert!(verify::cut_separates(&g, &cut.cut_edges, s, t));
        assert!(cut.value >= exact);
    }
}

/// Theorem 1.5: the distributed global cut agrees with brute force and its
/// bisection certificate is exact.
#[test]
fn global_cut_pipeline() {
    for seed in 5..8u64 {
        let g = gen::diag_grid(3, 3, seed).unwrap();
        let w = gen::random_edge_weights(g.num_edges(), 0, 9, seed);
        let solver = PlanarSolver::builder(&g)
            .edge_weights(w.clone())
            .build()
            .unwrap();
        let r = solver.global_min_cut().unwrap();
        let mut dg = duality::baselines::shortest_paths::Digraph::new(g.num_vertices());
        for (e, &x) in w.iter().enumerate() {
            dg.add_arc(g.edge_tail(e), g.edge_head(e), x);
        }
        let (bf, _) = cuts::brute_force_directed_min_cut(&dg);
        assert_eq!(r.value, bf);
        // The builder derived directed per-dart capacities from the weights.
        assert_eq!(
            verify::directed_cut_capacity(&g, solver.capacities(), &r.side),
            r.value
        );
    }
}

/// Theorem 1.7: girth value and cycle certificate, with the Õ(D) vs Õ(D²)
/// round gap against the flow pipeline on the same instance.
#[test]
fn girth_pipeline_and_round_gap() {
    let g = gen::diag_grid(8, 8, 9).unwrap();
    let w = gen::random_edge_weights(g.num_edges(), 1, 30, 2);
    let solver = PlanarSolver::builder(&g)
        .edge_weights(w.clone())
        .build()
        .unwrap();
    let r = solver.girth().unwrap();
    assert_eq!(Some(r.girth), bgirth::planar_weighted_girth(&g, &w));
    let total: Weight = r.cycle_edges.iter().map(|&e| w[e]).sum();
    assert_eq!(total, r.girth);

    // Round-complexity shapes: girth is Õ(D) (here D·polylog⁵ with our
    // charging constants), flow is Õ(D²). At simulator scales the polylog
    // factors dominate the comparison, so we check each against its own
    // theory curve rather than head-to-head (see EXPERIMENTS.md F1/F3).
    let d = g.diameter() as u64;
    let logn = (g.num_vertices() as f64).log2().ceil() as u64;
    assert!(r.rounds.total() <= 100 * d * logn.pow(5), "girth is Õ(D)");
    let caps = gen::random_directed_capacities(g.num_edges(), 1, 9, 3);
    let fsolver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
    let f = fsolver.max_flow(0, g.num_vertices() - 1).unwrap();
    assert!(
        f.rounds.total() <= 100 * d * d * logn.pow(2),
        "flow is Õ(D²)"
    );
}

/// The whole stack behaves on edge-case topologies.
#[test]
fn edge_case_topologies() {
    // Cycle: every algorithm has a meaningful answer.
    let g = gen::cycle(8).unwrap();
    let w: Vec<Weight> = (1..=8).collect();
    let solver = PlanarSolver::builder(&g).edge_weights(w).build().unwrap();
    assert_eq!(solver.girth().unwrap().girth, 36);
    let gc = solver.global_min_cut().unwrap();
    assert_eq!(gc.value, 1, "lightest arc of the directed cycle");

    // Path (tree): girth undefined, directed cut zero.
    let p = gen::path(7).unwrap();
    let psolver = PlanarSolver::builder(&p)
        .edge_weights(vec![5; p.num_edges()])
        .build()
        .unwrap();
    assert_eq!(psolver.girth().err(), Some(duality::DualityError::Acyclic));
    assert_eq!(psolver.global_min_cut().unwrap().value, 0);

    // Flow across a tree is the bottleneck edge.
    let mut caps = vec![0; p.num_darts()];
    for e in 0..p.num_edges() {
        caps[2 * e] = (e as Weight % 3) + 1;
    }
    let fsolver = PlanarSolver::builder(&p).capacities(caps).build().unwrap();
    assert_eq!(fsolver.max_flow(0, 6).unwrap().value, 1);
}

/// Determinism: identical inputs give identical results and round bills.
#[test]
fn determinism() {
    let run = || {
        let g = gen::diag_grid(5, 5, 3).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 9, 4);
        let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
        let r = solver.max_flow(0, 24).unwrap();
        (r.value, r.flow.clone(), r.rounds.total())
    };
    assert_eq!(run(), run());
}

/// The façade never leaks per-module error types: every failure mode of
/// every query surfaces as `DualityError`.
#[test]
fn unified_error_surface() {
    use duality::DualityError;
    let g = gen::grid(4, 4).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 5, 0);
    let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();

    let e: DualityError = solver.max_flow(3, 3).unwrap_err();
    assert!(matches!(e, DualityError::BadEndpoints { s: 3, t: 3, .. }));
    let e: DualityError = solver.min_st_cut(0, 999).unwrap_err();
    assert!(matches!(e, DualityError::BadEndpoints { .. }));
    // Corner (0,0) and interior vertex (2,2) of a 4x4 grid share no face.
    let e: DualityError = solver.approx_max_flow(0, 10, 2).unwrap_err();
    assert!(matches!(e, DualityError::NotStPlanar { .. }));
    // Errors display and chain as std errors.
    let boxed: Box<dyn std::error::Error> = Box::new(e);
    assert!(!boxed.to_string().is_empty());
}
