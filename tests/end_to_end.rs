//! Cross-crate integration tests: the full pipelines of all five theorems
//! on shared workloads, exercised through the public meta-crate API.

use duality::baselines::{cuts, flow as bflow, girth as bgirth};
use duality::core::{approx_flow, girth, global_cut, max_flow, st_cut, verify};
use duality::planar::{gen, Weight};

/// Theorem 1.2 + Theorem 6.1 end to end: flow value matches Dinic, the
/// assignment is feasible, and the min cut certifies it.
#[test]
fn flow_and_cut_pipeline() {
    for seed in 0..3u64 {
        let g = gen::diag_grid(6, 5, seed).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 0, 12, seed + 1);
        let (s, t) = (0, g.num_vertices() - 1);
        let flow = max_flow::max_st_flow(&g, &caps, s, t, &Default::default()).unwrap();
        assert_eq!(flow.value, bflow::planar_max_flow_reference(&g, &caps, s, t));
        verify::assert_valid_flow(&g, &caps, &flow.flow, s, t, flow.value);

        let cut = st_cut::exact_min_st_cut(&g, &caps, s, t, &Default::default()).unwrap();
        assert_eq!(cut.value, flow.value, "max-flow min-cut theorem");
        let cut_cap: Weight = cut.cut_darts.iter().map(|d| caps[d.index()]).sum();
        assert_eq!(cut_cap, flow.value, "cut darts are exactly saturated");
    }
}

/// Theorem 1.3 + Theorem 6.2 end to end on st-planar instances.
#[test]
fn approx_flow_and_cut_pipeline() {
    for k in [0u64, 3] {
        let g = gen::grid(6, 5).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 15, k + 5);
        let (s, t) = (0, 5); // two corners of the first row: outer face
        let exact = bflow::planar_max_flow_reference(&g, &caps, s, t);

        let flow = approx_flow::approx_max_st_flow(&g, &caps, s, t, k).unwrap();
        assert!(flow.value_numer <= exact * flow.denom);
        if k > 0 {
            let kk = k as Weight;
            assert!(flow.value_numer * (kk + 1) >= exact * flow.denom * kk);
        } else {
            assert_eq!(flow.value_numer, exact);
        }

        let (cut_value, cut_edges, _) = st_cut::approx_min_st_cut(&g, &caps, s, t, k).unwrap();
        assert!(verify::cut_separates(&g, &cut_edges, s, t));
        assert!(cut_value >= exact);
    }
}

/// Theorem 1.5: the distributed global cut agrees with brute force and its
/// bisection certificate is exact.
#[test]
fn global_cut_pipeline() {
    for seed in 5..8u64 {
        let g = gen::diag_grid(3, 3, seed).unwrap();
        let w = gen::random_edge_weights(g.num_edges(), 0, 9, seed);
        let r = global_cut::directed_global_min_cut(&g, &w).unwrap();
        let mut dg = duality::baselines::shortest_paths::Digraph::new(g.num_vertices());
        for (e, &x) in w.iter().enumerate() {
            dg.add_arc(g.edge_tail(e), g.edge_head(e), x);
        }
        let (bf, _) = cuts::brute_force_directed_min_cut(&dg);
        assert_eq!(r.value, bf);
        let mut caps = vec![0; g.num_darts()];
        for (e, &x) in w.iter().enumerate() {
            caps[2 * e] = x;
        }
        assert_eq!(verify::directed_cut_capacity(&g, &caps, &r.side), r.value);
    }
}

/// Theorem 1.7: girth value and cycle certificate, with the Õ(D) vs Õ(D²)
/// round gap against the flow pipeline on the same instance.
#[test]
fn girth_pipeline_and_round_gap() {
    let g = gen::diag_grid(8, 8, 9).unwrap();
    let w = gen::random_edge_weights(g.num_edges(), 1, 30, 2);
    let r = girth::weighted_girth(&g, &w).unwrap();
    assert_eq!(Some(r.girth), bgirth::planar_weighted_girth(&g, &w));
    let total: Weight = r.cycle_edges.iter().map(|&e| w[e]).sum();
    assert_eq!(total, r.girth);

    // Round-complexity shapes: girth is Õ(D) (here D·polylog⁵ with our
    // charging constants), flow is Õ(D²). At simulator scales the polylog
    // factors dominate the comparison, so we check each against its own
    // theory curve rather than head-to-head (see EXPERIMENTS.md F1/F3).
    let d = g.diameter() as u64;
    let logn = (g.num_vertices() as f64).log2().ceil() as u64;
    assert!(r.ledger.total() <= 100 * d * logn.pow(5), "girth is Õ(D)");
    let caps = gen::random_directed_capacities(g.num_edges(), 1, 9, 3);
    let f = max_flow::max_st_flow(&g, &caps, 0, g.num_vertices() - 1, &Default::default())
        .unwrap();
    assert!(f.ledger.total() <= 100 * d * d * logn.pow(2), "flow is Õ(D²)");
}

/// The whole stack behaves on edge-case topologies.
#[test]
fn edge_case_topologies() {
    // Cycle: every algorithm has a meaningful answer.
    let g = gen::cycle(8).unwrap();
    let w: Vec<Weight> = (1..=8).collect();
    assert_eq!(girth::weighted_girth(&g, &w).unwrap().girth, 36);
    let gc = global_cut::directed_global_min_cut(&g, &w).unwrap();
    assert_eq!(gc.value, 1, "lightest arc of the directed cycle");

    // Path (tree): girth undefined, directed cut zero.
    let p = gen::path(7).unwrap();
    let pw = vec![5; p.num_edges()];
    assert!(girth::weighted_girth(&p, &pw).is_none());
    assert_eq!(
        global_cut::directed_global_min_cut(&p, &pw).unwrap().value,
        0
    );

    // Flow across a tree is the bottleneck edge.
    let mut caps = vec![0; p.num_darts()];
    for e in 0..p.num_edges() {
        caps[2 * e] = (e as Weight % 3) + 1;
    }
    let f = max_flow::max_st_flow(&p, &caps, 0, 6, &Default::default()).unwrap();
    assert_eq!(f.value, 1);
}

/// Determinism: identical inputs give identical results and round bills.
#[test]
fn determinism() {
    let run = || {
        let g = gen::diag_grid(5, 5, 3).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 9, 4);
        let r = max_flow::max_st_flow(&g, &caps, 0, 24, &Default::default()).unwrap();
        (r.value, r.flow.clone(), r.ledger.total())
    };
    assert_eq!(run(), run());
}
