//! Integration tests of the telemetry spine through the public
//! meta-crate:
//!
//! (a) span/counter reconciliation: every admitted job emits exactly one
//!     span, and per-tenant lifecycle counters sum back to the engine's
//!     own metrics even when a cancel storm races the queue;
//! (b) ring overflow is dropped-and-counted, never blocking a worker;
//! (c) attribution: per-tenant p99 diverges from the fleet-wide p99
//!     under skewed tenants, and the worst tenant is identified;
//! (d) the autopilot closed loop: telemetry pressure scales the worker
//!     fleet up, and a clear window retires it back to the spec floor.

use duality::control::AutopilotPolicy;
use duality::service::{SpanRecord, SpanState};
use duality::telemetry::TenantStats;
use duality::workload::{FamilySpec, Scenario, TenantRecord};
use duality::{
    AdmissionPolicy, FleetSpec, PlanarInstance, Query, Reconciler, ServiceEngine, Telemetry,
    TenantDecl,
};
use std::sync::Arc;

fn instance(seed: u64) -> Arc<PlanarInstance> {
    let g = duality::planar::gen::diag_grid(4, 4, seed).unwrap();
    let caps = duality::planar::gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
    PlanarInstance::new(g, Some(caps), None).unwrap()
}

/// (a) The `cancellation-storm` preset piles a burst deep into a paused
/// queue; a quarter of the tickets are cancelled before the single
/// worker starts. Every admitted job must resolve to exactly one span,
/// and the per-tenant ledger must sum back to the engine's counters —
/// no lost spans, no double counts, on any terminal path.
#[test]
fn spans_reconcile_with_engine_counters_under_a_cancel_storm() {
    let scenario = Scenario::preset("cancellation-storm", 11).unwrap();
    let trace = scenario.record().unwrap();
    let jobs = trace.materialize().unwrap();
    let telemetry = Telemetry::new(jobs.len() * 2 + 16);
    let engine = ServiceEngine::builder()
        .shards(2)
        .workers(1)
        .queue_capacity(jobs.len().max(16))
        .admission(AdmissionPolicy::Block)
        .span_sink(telemetry.sink())
        .start_paused()
        .build()
        .unwrap();

    // Everything queues behind the start gate, so the cancel slice is
    // deterministic: those jobs are still queued, every cancel wins.
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| engine.submit(&j.instance, j.query).unwrap())
        .collect();
    let to_cancel = tickets.len() / 4;
    let won: usize = tickets
        .iter()
        .rev()
        .take(to_cancel)
        .filter(|t| t.cancel())
        .count();
    assert_eq!(won, to_cancel, "queued jobs always lose to cancel");
    engine.resume();
    for t in tickets {
        let _ = t.wait();
    }
    let m = engine.shutdown();
    let snap = telemetry.snapshot();

    assert_eq!(snap.spans, m.submitted, "one span per admitted job");
    assert_eq!(snap.dropped, 0, "the sized ring loses nothing");
    let sum =
        |pick: fn(&TenantStats) -> u64| snap.tenants.iter().map(|t| pick(&t.stats)).sum::<u64>();
    assert_eq!(sum(|s| s.completed), m.completed);
    assert_eq!(sum(|s| s.cancelled), m.cancelled);
    assert_eq!(sum(|s| s.failed), m.failed);
    assert_eq!(sum(|s| s.expired), m.expired);
    assert_eq!(sum(|s| s.spans()), snap.spans, "no span double-counts");
    assert_eq!(m.cancelled as usize, to_cancel, "each cancel resolves once");
    assert_eq!(
        sum(|s| s.service.count),
        m.completed + m.failed,
        "service time exists only for jobs that actually ran"
    );
    assert_eq!(
        sum(|s| s.wait.count),
        m.submitted,
        "every admitted job waited, even the cancelled ones"
    );
}

/// (a′) The same cancel-storm reconciliation as (a), with the stealing
/// paths in play: the paused backlog spreads round-robin across
/// per-worker deques, so once the fleet resumes, jobs reach workers by
/// local pops, injector drains and steals — and cancels race all three.
/// The ledger must still reconcile exactly, span for span.
///
/// `DUALITY_STRESS_WORKERS` (default 4) sizes the fleet, so CI can
/// re-run this suite as a stress pass at a wider worker count.
#[test]
fn spans_reconcile_while_stealing_workers_race_the_cancel_storm() {
    let workers: usize = std::env::var("DUALITY_STRESS_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let scenario = Scenario::preset("cancellation-storm", 23).unwrap();
    let trace = scenario.record().unwrap();
    let jobs = trace.materialize().unwrap();
    let telemetry = Telemetry::new(jobs.len() * 2 + 16);
    let engine = ServiceEngine::builder()
        .shards(2)
        .workers(workers)
        .queue_capacity(jobs.len().max(16))
        .admission(AdmissionPolicy::Block)
        .span_sink(telemetry.sink())
        .start_paused()
        .build()
        .unwrap();

    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| engine.submit(&j.instance, j.query).unwrap())
        .collect();
    let to_cancel = tickets.len() / 4;
    let won: usize = tickets
        .iter()
        .rev()
        .take(to_cancel)
        .filter(|t| t.cancel())
        .count();
    assert_eq!(won, to_cancel, "paused jobs always lose to cancel");
    engine.resume();
    for t in tickets {
        let _ = t.wait();
    }
    let m = engine.shutdown();
    let snap = telemetry.snapshot();

    assert_eq!(snap.spans, m.submitted, "one span per admitted job");
    assert_eq!(snap.dropped, 0, "the sized ring loses nothing");
    let sum =
        |pick: fn(&TenantStats) -> u64| snap.tenants.iter().map(|t| pick(&t.stats)).sum::<u64>();
    assert_eq!(sum(|s| s.completed), m.completed);
    assert_eq!(sum(|s| s.cancelled), m.cancelled);
    assert_eq!(sum(|s| s.failed), m.failed);
    assert_eq!(sum(|s| s.expired), m.expired);
    assert_eq!(sum(|s| s.spans()), snap.spans, "no span double-counts");
    assert_eq!(m.cancelled as usize, to_cancel, "each cancel resolves once");
    assert_eq!(sum(|s| s.service.count), m.completed + m.failed);
    assert_eq!(sum(|s| s.wait.count), m.submitted);
    // The drain itself must have exercised the scheduler: a worker that
    // empties its own deque while siblings still hold backlog steals,
    // and one that finds the whole engine drained parks.
    assert!(
        m.scheduler.steals + m.scheduler.parks > 0,
        "a multi-worker drain never runs entirely on local pops: {}",
        m.scheduler
    );
}

/// (b) A two-slot ring under five jobs: the engine never blocks, the
/// overflow is counted, and kept + dropped reconciles with everything
/// offered to the sink — job spans and build-phase spans alike.
#[test]
fn ring_overflow_drops_are_counted_never_blocking() {
    let telemetry = Telemetry::new(2);
    let engine = ServiceEngine::builder()
        .workers(1)
        .span_sink(telemetry.sink())
        .build()
        .unwrap();
    let i = instance(5);
    for _ in 0..5 {
        engine.run(&i, Query::Girth).unwrap();
    }
    let m = engine.shutdown();
    assert_eq!(m.completed, 5, "a saturated ring never blocks the engine");

    let snap = telemetry.snapshot();
    assert_eq!(snap.spans, 2, "the ring keeps the newest job spans");
    assert!(
        snap.dropped >= 3,
        "job-span overflow is dropped and counted"
    );
    // The first job's substrate build also emitted phase spans (capped at
    // the same ring capacity); kept + dropped reconciles with offered.
    let phase_kept = snap.phase_us.len() as u64;
    assert!(phase_kept <= 2, "the phase ring obeys the same capacity");
    assert_eq!(
        snap.spans + phase_kept + snap.dropped,
        telemetry.ring().seen()
    );
    // The drop counter is surfaced on the snapshot's display line, so an
    // operator sees span loss without touching the API.
    assert!(snap
        .to_string()
        .contains(&format!("{} dropped", snap.dropped)));
}

/// (c) Nine fast spans for tenant A and one slow span for tenant B: the
/// fleet-wide p99 is pinned by B while A's own p99 stays orders of
/// magnitude lower — the attribution the aggregate histogram cannot
/// make.
#[test]
fn per_tenant_p99_diverges_from_the_fleet_under_skew() {
    let telemetry = Telemetry::new(64);
    let sink = telemetry.sink();
    let span = |tenant: u64, total_us: u64| SpanRecord {
        tenant,
        spec: 1,
        query: "girth",
        shard: 0,
        worker: Some(0),
        state: SpanState::Completed,
        submitted_us: 0,
        admitted_us: Some(0),
        dequeued_us: Some(0),
        started_us: Some(0),
        finished_us: total_us,
        source: Some(duality::service::DequeueSource::Local),
    };
    for _ in 0..9 {
        sink.record(span(0xA, 100));
    }
    sink.record(span(0xB, 1_000_000));

    let snap = telemetry.snapshot();
    let fleet = snap.fleet_total().quantile_us(0.99).unwrap();
    let a = snap.tenant(0xA).unwrap().p99_total_us().unwrap();
    let b = snap.tenant(0xB).unwrap().p99_total_us().unwrap();
    assert_eq!(fleet, 1_000_000, "the fleet p99 is pinned by the slow job");
    assert_eq!(b, fleet);
    assert!(a <= 128, "the fast tenant's own p99 stays fast: {a}µs");
    assert_eq!(snap.max_tenant_p99_us(), Some((0xB, b)), "B is the worst");
}

/// (d) The closed loop through the public surface: one completed job
/// puts latency pressure in the autopilot's window (p99 band at zero),
/// the next reconcile pass surges the fleet to the ceiling, and the
/// pass after — its window clear — retires back to the spec floor, with
/// both decisions on the telemetry event log.
#[test]
fn autopilot_scales_on_pressure_and_retires_when_clear() {
    let spec = FleetSpec {
        name: "autopilot-int".into(),
        revision: 1,
        workers: 1,
        shards: 1,
        queue_capacity: 16,
        pool_capacity: 4,
        admission: AdmissionPolicy::Block,
        tenants: vec![TenantDecl {
            name: "grid".into(),
            record: TenantRecord {
                family: FamilySpec::DiagGrid { w: 4, h: 4 },
                cap_range: (1, 9),
                weight_range: (1, 9),
                graph_seed: 7,
                cap_seed: 8,
                weight_seed: 9,
            },
            prewarm: true,
            derate_percent: 100,
            slo: None,
        }],
    };
    let telemetry = Arc::new(Telemetry::new(256));
    let mut fleet = Reconciler::launch_with_telemetry(spec, Arc::clone(&telemetry)).unwrap();
    fleet.reconcile().unwrap();
    fleet
        .enable_autopilot(AutopilotPolicy {
            queue_high_water: 1000, // queue never hot: pressure is p99-driven
            queue_low_water: 0,
            p99_high_us: 0, // any completed job trips the band
            p99_low_us: 0,
            scale_step: 2,
            max_workers: 3,
            cooldown_rounds: 0,
        })
        .unwrap();

    let i = Arc::clone(fleet.instance("grid").unwrap());
    fleet.engine().run(&i, Query::Girth).unwrap();
    fleet.reconcile().unwrap();
    assert_eq!(fleet.desired_workers(), 3, "pressure surged to the ceiling");

    let obs = fleet.observe();
    assert!(
        obs.tenants[0].p99_us.is_some(),
        "the tenant's SLO judgement runs on its own attributed latency"
    );

    fleet.reconcile().unwrap();
    assert_eq!(
        fleet.desired_workers(),
        1,
        "a clear window retires the surge"
    );

    let labels: Vec<String> = telemetry
        .snapshot()
        .events
        .iter()
        .map(|e| e.label.clone())
        .collect();
    assert!(labels.iter().any(|l| l == "scale-up"), "{labels:?}");
    assert!(labels.iter().any(|l| l == "scale-down"), "{labels:?}");
    fleet.shutdown();
}
