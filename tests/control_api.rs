//! Integration tests of the control plane through the public meta-crate:
//! spec round trips, bounded convergence, live reconfiguration, and
//! crash recovery from hash-guarded snapshots.

use duality::control::{Snapshot, FLEET_SCHEMA_VERSION};
use duality::workload::{FamilySpec, TenantRecord};
use duality::{
    Action, AdmissionPolicy, ControlError, FleetSpec, InstanceKey, Query, ReconcilePolicy,
    Reconciler, Slo, StateStore, TenantDecl,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tenant(name: &str, family: FamilySpec, seed: u64) -> TenantDecl {
    TenantDecl {
        name: name.to_string(),
        record: TenantRecord {
            family,
            cap_range: (1, 9),
            weight_range: (1, 9),
            graph_seed: seed,
            cap_seed: seed + 100,
            weight_seed: seed + 200,
        },
        prewarm: true,
        derate_percent: 100,
        slo: None,
    }
}

fn fleet() -> FleetSpec {
    FleetSpec {
        name: "itest".into(),
        revision: 1,
        workers: 2,
        shards: 2,
        queue_capacity: 32,
        pool_capacity: 8,
        admission: AdmissionPolicy::Block,
        tenants: vec![
            tenant("grid", FamilySpec::DiagGrid { w: 5, h: 4 }, 1),
            tenant("mesh", FamilySpec::Apollonian { n: 8 }, 2),
            TenantDecl {
                prewarm: false,
                ..tenant("cold", FamilySpec::Grid { w: 3, h: 3 }, 3)
            },
        ],
    }
}

fn temp_store(tag: &str) -> (StateStore, PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "duality-control-api-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    (StateStore::new(path.clone()), path)
}

#[test]
fn spec_round_trip_survives_the_meta_crate_surface() {
    let mut spec = fleet();
    spec.tenants[0].slo = Some(Slo {
        max_p99_us: Some(250_000),
        max_queue_depth: Some(16),
    });
    spec.validate().unwrap();
    assert_eq!(FLEET_SCHEMA_VERSION, 1);
    let text = spec.to_jsonl();
    let parsed = FleetSpec::parse_jsonl(&text).unwrap();
    assert_eq!(parsed, spec);
    assert_eq!(parsed.to_jsonl(), text);
    assert_eq!(parsed.spec_hash(), spec.spec_hash());
}

#[test]
fn a_pushed_spec_converges_within_the_budget() {
    let mut fleet_ctl = Reconciler::launch(fleet()).unwrap();
    let report = fleet_ctl.reconcile().unwrap();
    assert!(report.converged, "{report:?}");
    assert!(
        report.rounds <= ReconcilePolicy::default().max_rounds,
        "bounded: {report:?}"
    );

    // Prewarmed tenants answer without a cold build through the queue;
    // the un-prewarmed one stays cold until traffic arrives.
    let obs = fleet_ctl.observe();
    let by_name = |n: &str| obs.tenants.iter().find(|t| t.name == n).unwrap();
    assert!(by_name("grid").resident && by_name("mesh").resident);
    assert!(!by_name("cold").resident);

    let grid = Arc::clone(fleet_ctl.instance("grid").unwrap());
    let outcome = fleet_ctl
        .engine()
        .run(
            &grid,
            Query::MaxFlow {
                s: 0,
                t: grid.n() - 1,
            },
        )
        .unwrap();
    assert!(matches!(outcome, duality::Outcome::MaxFlow(_)));

    // Storm push: derate one region, scale the fleet, flip admission —
    // one declarative edit, one converged pass.
    let mut storm = fleet_ctl.spec().clone();
    storm.revision += 1;
    storm.workers = 4;
    storm.admission = AdmissionPolicy::Reject;
    storm.tenants[0].derate_percent = 50;
    let report = fleet_ctl.push(storm).unwrap();
    assert!(report.converged, "{report:?}");
    assert!(report
        .actions
        .iter()
        .any(|a| matches!(a, Action::DerateRegion { percent: 50, .. })));
    assert_eq!(fleet_ctl.engine().metrics().workers, 4);
    assert_eq!(fleet_ctl.engine().admission(), AdmissionPolicy::Reject);

    // The derated instance really is a COW respec: queries against it
    // reuse the base's topology substrate on its home shard.
    let derated = Arc::clone(fleet_ctl.instance("grid").unwrap());
    assert!(Arc::ptr_eq(grid.graph_arc(), derated.graph_arc()));
    let (a, b) = (
        fleet_ctl.engine().solver(&grid),
        fleet_ctl.engine().solver(&derated),
    );
    assert!(Arc::ptr_eq(a.topo_substrate(), b.topo_substrate()));
    fleet_ctl.shutdown();
}

#[test]
fn restart_from_snapshot_converges_to_the_same_state() {
    let (store, path) = temp_store("restart");
    let mut first = Reconciler::launch(fleet()).unwrap();
    first.attach_store(store);
    let mut spec = first.spec().clone();
    spec.revision += 1;
    spec.workers = 3;
    spec.tenants[1].derate_percent = 70;
    first.push(spec.clone()).unwrap();
    let before: Vec<InstanceKey> = fleet()
        .tenants
        .iter()
        .map(|t| InstanceKey::of(first.instance(&t.name).unwrap()))
        .collect();
    first.shutdown();

    // A new controller process: resume from the snapshot alone.
    let mut second = Reconciler::resume(StateStore::new(path.clone())).unwrap();
    assert_eq!(second.spec(), &spec, "snapshot restored the spec in force");
    let report = second.reconcile().unwrap();
    assert!(report.converged, "{report:?}");

    // Same spec → same desired instances (content-identical keys) and
    // the same warm set.
    let after: Vec<InstanceKey> = fleet()
        .tenants
        .iter()
        .map(|t| InstanceKey::of(second.instance(&t.name).unwrap()))
        .collect();
    assert_eq!(after, before);
    let obs = second.observe();
    assert_eq!(obs.workers_live, 3);
    for t in &obs.tenants {
        let wanted = spec
            .tenants
            .iter()
            .find(|d| d.name == t.name)
            .unwrap()
            .prewarm;
        assert_eq!(t.resident, wanted, "{}", t.name);
    }
    second.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshots_are_byte_stable_and_tamper_refused() {
    let (store, path) = temp_store("tamper");
    let mut ctl = Reconciler::launch(fleet()).unwrap();
    ctl.attach_store(store);
    ctl.reconcile().unwrap();
    ctl.shutdown();

    let text = std::fs::read_to_string(&path).unwrap();
    let snap = Snapshot::parse_jsonl(&text).unwrap();
    assert_eq!(snap.to_jsonl(), text, "stored snapshot is canonical");
    assert!(snap.converged && snap.seq == 1);
    assert_eq!(snap.spec_hash, fleet().spec_hash());

    // Tamper with the payload: a quietly edited worker count is refused.
    let tampered = text.replacen("\"workers\": 2", "\"workers\": 8", 1);
    std::fs::write(&path, &tampered).unwrap();
    let err = Reconciler::resume(StateStore::new(path.clone())).unwrap_err();
    assert!(matches!(err, ControlError::HashMismatch { .. }), "{err}");

    // Unknown snapshot schema version is refused before hashing.
    let future = text.replacen("\"schema_version\": 1", "\"schema_version\": 9", 1);
    std::fs::write(&path, &future).unwrap();
    let err = Reconciler::resume(StateStore::new(path.clone())).unwrap_err();
    assert!(matches!(err, ControlError::Parse { .. }), "{err}");

    // And an empty store refuses resume by name.
    std::fs::remove_file(&path).unwrap();
    let err = Reconciler::resume(StateStore::new(path.clone())).unwrap_err();
    assert!(matches!(err, ControlError::MissingSnapshot { .. }), "{err}");
}
