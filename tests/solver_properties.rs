//! Property tests for the `PlanarSolver` façade:
//!
//! (a) solver queries agree with the legacy free functions on random
//!     `diag_grid` instances;
//! (b) max-flow value equals min-st-cut value (duality) through the solver;
//! (c) repeated queries on one solver reuse the cached substrate (asserted
//!     via the build counters and the substrate ledger);
//! (d) a multi-threaded `run_batch` agrees bit-for-bit with serial `run`
//!     on random instances and random duplicate patterns.

use duality::core::girth::weighted_girth;
use duality::core::global_cut::directed_global_min_cut;
use duality::core::max_flow::{max_st_flow, MaxFlowOptions};
use duality::core::verify;
use duality::planar::gen;
use duality::{Outcome, PlanarSolver, Query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Agreement with the legacy free functions: same value, same
    /// witness, on random triangulated grids with random capacities.
    #[test]
    fn solver_agrees_with_free_functions(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
        hi in 3i64..12,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 0, hi, seed + 1);
        let weights = gen::random_edge_weights(g.num_edges(), 1, hi, seed + 2);
        let (s, t) = (0, g.num_vertices() - 1);
        let solver = PlanarSolver::builder(&g)
            .capacities(caps.clone())
            .edge_weights(weights.clone())
            .build()
            .unwrap();

        let got = solver.max_flow(s, t).unwrap();
        let want = max_st_flow(&g, &caps, s, t, &MaxFlowOptions::default()).unwrap();
        prop_assert_eq!(got.value, want.value);
        prop_assert_eq!(&got.flow, &want.flow);
        verify::assert_valid_flow(&g, &caps, &got.flow, s, t, got.value);

        let gotc = solver.global_min_cut().unwrap();
        let wantc = directed_global_min_cut(&g, &weights).unwrap();
        prop_assert_eq!(gotc.value, wantc.value);

        let gotg = solver.girth().unwrap();
        let wantg = weighted_girth(&g, &weights).unwrap();
        prop_assert_eq!(gotg.girth, wantg.girth);
    }

    /// (b) Max-flow min-cut duality through the façade: the two queries
    /// return the same value and the cut is a genuine certificate.
    #[test]
    fn flow_equals_cut_through_solver(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
        hi in 2i64..10,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, hi, seed + 3);
        let (s, t) = (0, g.num_vertices() - 1);
        let solver = PlanarSolver::builder(&g).capacities(caps.clone()).build().unwrap();

        let flow = solver.max_flow(s, t).unwrap();
        let cut = solver.min_st_cut(s, t).unwrap();
        prop_assert_eq!(flow.value, cut.value, "max-flow min-cut duality");
        prop_assert!(cut.side[s] && !cut.side[t]);
        prop_assert_eq!(
            verify::directed_cut_capacity(&g, &caps, &cut.side),
            cut.value
        );
        let cut_edges: Vec<usize> = cut.cut_darts.iter().map(|d| d.edge()).collect();
        prop_assert!(verify::cut_separates(&g, &cut_edges, s, t));
    }

    /// (c) Substrate caching: any interleaving of queries on one solver
    /// builds the decomposition at most once and never re-charges the
    /// substrate ledger after it stabilizes.
    #[test]
    fn substrate_is_cached_across_queries(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
        order in 0u8..6,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 4);
        let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 5);
        let (s, t) = (0, g.num_vertices() - 1);
        let solver = PlanarSolver::builder(&g)
            .capacities(caps)
            .edge_weights(weights)
            .build()
            .unwrap();

        // Three engine-backed queries in a sample-dependent order, plus a
        // girth (dual-backed) query.
        let run = |i: u8| match i {
            0 => solver.max_flow(s, t).map(|r| r.value).unwrap(),
            1 => solver.min_st_cut(s, t).map(|r| r.value).unwrap(),
            _ => solver.global_min_cut().map(|r| r.value).unwrap(),
        };
        run(order % 3);
        run((order + 1) % 3);
        run((order + 2) % 3);
        solver.girth().unwrap();

        let stats = solver.stats();
        prop_assert_eq!(stats.engine_builds, 1, "one BDD for all engine queries");
        prop_assert_eq!(stats.dual_builds, 1, "one dual graph for girth");
        prop_assert_eq!(stats.queries, 4);

        // The substrate ledger is stable: more queries, no new charges.
        let frozen = solver.substrate_rounds().total();
        prop_assert!(solver.substrate_rounds().phase_total("bdd-build") > 0);
        let again = solver.max_flow(s, t).unwrap();
        prop_assert_eq!(solver.substrate_rounds().total(), frozen);
        prop_assert_eq!(again.rounds.substrate_total(), frozen);
        prop_assert_eq!(again.rounds.query.phase_total("bdd-build"), 0);
    }

    /// (d) Batched execution is indistinguishable from serial: same
    /// values, same witnesses, same marginal round bills — on 2 and 4
    /// worker threads, with a sample-dependent duplicate pattern.
    #[test]
    fn batch_matches_serial_execution(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
        dup in 0usize..6,
        threads in 2usize..5,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 6);
        let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 7);
        let (s, t) = (0, g.num_vertices() - 1);
        let build = || {
            PlanarSolver::builder(&g)
                .capacities(caps.clone())
                .edge_weights(weights.clone())
                .build()
                .unwrap()
        };

        let mut queries = vec![
            Query::MaxFlow { s, t },
            Query::MinStCut { s, t },
            Query::GlobalMinCut,
            Query::Girth,
        ];
        queries.push(queries[dup % 4]); // a duplicate, position varies

        let serial = build();
        let want: Vec<Outcome> = queries.iter().map(|&q| serial.run(q).unwrap()).collect();

        let batched = build();
        let batch = batched.run_batch_on(&queries, threads);
        prop_assert!(batch.all_ok());
        prop_assert_eq!(batch.unique, 4);
        prop_assert_eq!(batch.duplicates, 1);
        prop_assert_eq!(batched.stats().queries, 4, "duplicate ran once");
        for (a, b) in want.iter().zip(&batch.outcomes) {
            let b = b.as_ref().unwrap();
            let agree = match (a, b) {
                (Outcome::MaxFlow(x), Outcome::MaxFlow(y)) => {
                    x.value == y.value && x.flow == y.flow && x.probes == y.probes
                        && x.rounds.query_total() == y.rounds.query_total()
                }
                (Outcome::MinStCut(x), Outcome::MinStCut(y)) => {
                    x.value == y.value && x.side == y.side && x.cut_darts == y.cut_darts
                        && x.rounds.query_total() == y.rounds.query_total()
                }
                (Outcome::GlobalMinCut(x), Outcome::GlobalMinCut(y)) => {
                    x.value == y.value && x.side == y.side && x.cut_edges == y.cut_edges
                        && x.rounds.query_total() == y.rounds.query_total()
                }
                (Outcome::Girth(x), Outcome::Girth(y)) => {
                    x.girth == y.girth && x.cycle_edges == y.cycle_edges
                        && x.rounds.query_total() == y.rounds.query_total()
                }
                _ => false,
            };
            prop_assert!(agree, "batched outcome diverged from serial");
        }
        // One merged bill, substrate charged once.
        prop_assert_eq!(
            batch.rounds.substrate_total(),
            batched.substrate_rounds().total()
        );
    }
}
