//! Integration tests of the sharded serving engine through the public
//! meta-crate: a concurrent multi-tenant soak, determinism against serial
//! solver execution, and shutdown-drains semantics.

use duality::planar::gen;
use duality::service::Ticket;
use duality::{
    AdmissionPolicy, InstanceKey, Outcome, PlanarInstance, PlanarSolver, Query, ServiceEngine,
};
use std::sync::Arc;

fn instance(w: usize, h: usize, seed: u64) -> Arc<PlanarInstance> {
    let g = gen::diag_grid(w, h, seed).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 100);
    let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 200);
    PlanarInstance::new(g, Some(caps), Some(weights)).unwrap()
}

/// The multi-tenant workload: two networks, each with a respec'd second
/// spec, four query kinds per spec.
fn tenants() -> Vec<Arc<PlanarInstance>> {
    let mut out = Vec::new();
    for seed in [1u64, 2] {
        let base = instance(5, 4, seed);
        let surge: Vec<i64> = base.capacities().iter().map(|&c| 2 * c).collect();
        let respec = base.with_capacities(surge).unwrap();
        out.push(base);
        out.push(respec);
    }
    out
}

fn queries(i: &PlanarInstance) -> Vec<Query> {
    let t = i.n() - 1;
    vec![
        Query::MaxFlow { s: 0, t },
        Query::MinStCut { s: 0, t },
        Query::GlobalMinCut,
        Query::Girth,
    ]
}

/// The determinism contract compares witnesses and marginal query rounds
/// (substrate *snapshots* may legitimately differ under concurrency —
/// see the engine docs).
fn assert_same_outcome(got: &Outcome, want: &Outcome) {
    assert_eq!(got.rounds().query_total(), want.rounds().query_total());
    match (got, want) {
        (Outcome::MaxFlow(g), Outcome::MaxFlow(w)) => {
            assert_eq!(g.value, w.value);
            assert_eq!(g.flow, w.flow);
            assert_eq!(g.probes, w.probes);
        }
        (Outcome::MinStCut(g), Outcome::MinStCut(w)) => {
            assert_eq!(g.value, w.value);
            assert_eq!(g.side, w.side);
            assert_eq!(g.cut_darts, w.cut_darts);
        }
        (Outcome::GlobalMinCut(g), Outcome::GlobalMinCut(w)) => {
            assert_eq!(g.value, w.value);
            assert_eq!(g.side, w.side);
            assert_eq!(g.cut_edges, w.cut_edges);
        }
        (Outcome::Girth(g), Outcome::Girth(w)) => {
            assert_eq!(g.girth, w.girth);
            assert_eq!(g.cycle_edges, w.cycle_edges);
        }
        _ => panic!("outcome variant mismatch"),
    }
}

#[test]
fn soak_concurrent_submitters_match_serial_execution() {
    // Serial ground truth: one fresh solver per spec, queries in order.
    let tenants = tenants();
    let serial: Vec<Vec<Outcome>> = tenants
        .iter()
        .map(|i| {
            let solver = PlanarSolver::from_instance(Arc::clone(i));
            queries(i).iter().map(|&q| solver.run(q).unwrap()).collect()
        })
        .collect();

    let engine = ServiceEngine::builder()
        .shards(3)
        .workers(4)
        .queue_capacity(8) // tighter than the workload: exercises Block backpressure
        .admission(AdmissionPolicy::Block)
        .build()
        .unwrap();

    // Deterministic warmup: admit each tenant in order (base before its
    // respec), so every respec finds its donor and the storm below is
    // all hits — the counter assertions at the end stay exact.
    for i in &tenants {
        let _ = engine.run(i, Query::Girth).unwrap();
    }

    // Four submitter threads hammer the engine concurrently, each
    // replaying the full multi-tenant workload twice, waiting tickets as
    // it goes and checking every outcome against the serial truth.
    const SUBMITTERS: usize = 4;
    const ROUNDS: usize = 2;
    std::thread::scope(|scope| {
        for _ in 0..SUBMITTERS {
            let engine = &engine;
            let tenants = &tenants;
            let serial = &serial;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let tickets: Vec<(usize, usize, Ticket)> = tenants
                        .iter()
                        .enumerate()
                        .flat_map(|(ti, i)| {
                            queries(i)
                                .into_iter()
                                .enumerate()
                                .map(move |(qi, q)| (ti, qi, engine.submit(i, q).unwrap()))
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    for (ti, qi, ticket) in tickets {
                        let got = ticket.wait().unwrap();
                        assert_same_outcome(&got, &serial[ti][qi]);
                    }
                }
            });
        }
    });

    let warmup = tenants.len() as u64;
    let jobs = (SUBMITTERS * ROUNDS * tenants.len() * 4) as u64 + warmup;
    let m = engine.shutdown();
    assert_eq!(m.submitted, jobs);
    assert_eq!(m.completed, jobs);
    assert_eq!(
        (m.failed, m.rejected, m.expired, m.cancelled, m.in_flight()),
        (0, 0, 0, 0, 0)
    );
    assert_eq!(m.queue_depth, 0);
    assert!(m.queue_high_water <= 8, "admission bound held");
    assert_eq!(m.latency.count, jobs);

    // The pool layer amortized across the storm: four specs cached by the
    // warmup (each respec admitted via its donor), the storm all hits.
    let pool = m.pool_total();
    assert_eq!(pool.len, 4);
    assert_eq!(pool.misses, warmup, "only the warmup missed");
    assert_eq!(pool.hits, jobs - warmup, "the whole storm hit the cache");
    assert_eq!(pool.respec_reuses, 2, "one per respec'd tenant");
    assert!(m.query_rounds() > 0 && m.substrate_rounds() > 0);
    // Substrate is billed amortized: far below "query count × substrate".
    assert!(m.substrate_rounds() < m.query_rounds());
    // The snapshot pretty-prints, shard lines (PoolStats Display) included.
    let text = m.to_string();
    assert!(text.contains("shard 0: pool:"));
    assert!(text.contains("respec-reuses"));
}

#[test]
fn engine_outcomes_are_identical_across_worker_and_shard_counts() {
    let i = instance(4, 4, 9);
    let qs = queries(&i);
    let serial: Vec<Outcome> = {
        let solver = PlanarSolver::from_instance(Arc::clone(&i));
        qs.iter().map(|&q| solver.run(q).unwrap()).collect()
    };
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            let engine = ServiceEngine::builder()
                .shards(shards)
                .workers(workers)
                .build()
                .unwrap();
            let tickets: Vec<Ticket> = qs.iter().map(|&q| engine.submit(&i, q).unwrap()).collect();
            for (ticket, want) in tickets.into_iter().zip(&serial) {
                assert_same_outcome(&ticket.wait().unwrap(), want);
            }
            let m = engine.shutdown();
            assert_eq!(m.completed, qs.len() as u64);
        }
    }
}

#[test]
fn shutdown_drains_a_deep_backlog() {
    // A paused engine accumulates a backlog deeper than the worker pool;
    // shutdown must resolve every ticket before returning.
    let engine = ServiceEngine::builder()
        .shards(2)
        .workers(2)
        .queue_capacity(64)
        .start_paused()
        .build()
        .unwrap();
    let tenants = tenants();
    let tickets: Vec<Ticket> = (0..3)
        .flat_map(|_| {
            tenants
                .iter()
                .map(|i| engine.submit(i, Query::Girth).unwrap())
                .collect::<Vec<_>>()
        })
        .collect();
    let jobs = tickets.len() as u64;
    let m = engine.shutdown();
    assert_eq!(m.completed, jobs, "the drain ran every queued job");
    assert_eq!(m.queue_depth, 0);
    assert_eq!(
        m.queue_high_water as u64, jobs,
        "paused backlog peaked at N"
    );
    for ticket in tickets {
        assert!(ticket.wait().is_ok(), "no ticket was abandoned");
    }
}

#[test]
fn cancellation_races_shutdown_without_losing_a_job() {
    // A canceller thread races shutdown's drain over a deep paused
    // backlog. Whatever interleaving happens, the ledger must stay
    // exact: every job either completed or observed its cancellation —
    // never both, never neither.
    use duality::ServiceError;
    let engine = ServiceEngine::builder()
        .shards(2)
        .workers(2)
        .queue_capacity(64)
        .start_paused()
        .build()
        .unwrap();
    let i = instance(4, 4, 21);
    let tickets: Vec<Ticket> = (0..32)
        .map(|_| engine.submit(&i, Query::Girth).unwrap())
        .collect();
    let submitted = tickets.len() as u64;

    let m = std::thread::scope(|scope| {
        let canceller = scope.spawn(|| {
            tickets
                .iter()
                .rev() // back of the queue first: maximize won races
                .filter(|t| t.cancel())
                .count() as u64
        });
        engine.resume();
        let m = engine.shutdown();
        (m, canceller.join().unwrap())
    });
    let (m, cancel_wins) = m;

    assert_eq!(m.cancelled, cancel_wins, "ledger matches won races");
    assert_eq!(
        m.completed + m.cancelled,
        submitted,
        "no job lost or doubled"
    );
    assert_eq!(
        (m.failed, m.rejected, m.expired, m.in_flight()),
        (0, 0, 0, 0)
    );
    // Every ticket resolved consistently with the ledger.
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => completed += 1,
            Err(ServiceError::Cancelled) => cancelled += 1,
            Err(e) => panic!("unexpected resolution: {e}"),
        }
    }
    assert_eq!((completed, cancelled), (m.completed, m.cancelled));
}

#[test]
fn start_paused_buffers_until_resume() {
    // Pause is a hard gate: admission runs, nothing executes.
    let engine = ServiceEngine::builder()
        .shards(2)
        .workers(3)
        .queue_capacity(32)
        .start_paused()
        .build()
        .unwrap();
    let i = instance(4, 4, 22);
    let tickets: Vec<Ticket> = (0..6)
        .map(|_| engine.submit(&i, Query::Girth).unwrap())
        .collect();
    // Give eager workers every chance to (wrongly) start.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let paused = engine.metrics();
    assert_eq!(paused.completed, 0, "nothing ran while paused");
    assert_eq!(paused.running, 0, "nothing even claimed");
    assert_eq!(paused.queue_depth, tickets.len());
    assert!(tickets.iter().all(|t| t.try_result().is_none()));

    engine.resume();
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    engine.resume(); // idempotent on a running engine
    let m = engine.shutdown();
    assert_eq!(m.completed, 6);
    assert_eq!(m.queue_depth, 0);
}

#[test]
fn respecs_share_their_home_shard_donor() {
    let engine = ServiceEngine::builder()
        .shards(4)
        .workers(2)
        .build()
        .unwrap();
    let base = instance(4, 4, 33);
    let respec = base
        .with_capacities(vec![3; base.graph().num_darts()])
        .unwrap();
    assert_eq!(
        engine.shard_of(&InstanceKey::of(&base)),
        engine.shard_of(&InstanceKey::of(&respec))
    );
    let _ = engine.run(&base, Query::GlobalMinCut).unwrap();
    let _ = engine.run(&respec, Query::GlobalMinCut).unwrap();
    // The audit hatch exposes the very solvers the workers used: they
    // share one topology substrate across the respec.
    let (a, b) = (engine.solver(&base), engine.solver(&respec));
    assert!(Arc::ptr_eq(a.topo_substrate(), b.topo_substrate()));
    assert_eq!(engine.pool_stats().respec_reuses, 1);
}
