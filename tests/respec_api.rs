//! Integration tests for the two-tier substrate, the copy-on-write respec
//! API, and the keyed `SolverPool` serving layer:
//!
//! (a) `PlanarSolver::respec` shares the `Arc<TopoSubstrate>` (pointer
//!     equality) while batch answers stay bit-for-bit equal to a freshly
//!     built solver over the same data — the PR's acceptance criterion;
//! (b) the topology tier is charged once across a respec sweep, while
//!     every spec pays its own weight tier;
//! (c) `SolverPool` serves re-specced instances by respeccing cached
//!     solvers (respec-reuse), with LRU eviction and correct answers;
//! (d) property test: across all six query kinds, a respecced solver is
//!     indistinguishable from a fresh build on random instances.

use duality::planar::{gen, Weight};
use duality::{
    InstanceKey, Outcome, PlanarInstance, PlanarSolver, Query, SolverPool, TopoSubstrate,
};
use proptest::prelude::*;
use std::sync::Arc;

/// The six query kinds. The approximate st-planar queries use two
/// top-row corners of the `diag_grid`, which share the outer face.
fn six_queries(w: usize, n: usize) -> Vec<Query> {
    vec![
        Query::MaxFlow { s: 0, t: n - 1 },
        Query::MinStCut { s: 0, t: n - 1 },
        Query::ApproxMaxFlow {
            s: 0,
            t: w - 1,
            eps_inverse: 3,
        },
        Query::ApproxMinStCut {
            s: 0,
            t: w - 1,
            eps_inverse: 3,
        },
        Query::GlobalMinCut,
        Query::Girth,
    ]
}

/// Everything observable about an outcome: values, witnesses, marginal
/// rounds. Two solvers agreeing here are indistinguishable to a caller.
fn fingerprint(o: &Outcome) -> (Vec<Weight>, Vec<usize>, u64) {
    match o {
        Outcome::MaxFlow(r) => (
            std::iter::once(r.value).chain(r.flow.clone()).collect(),
            vec![r.probes as usize],
            r.rounds.query_total(),
        ),
        Outcome::MinStCut(r) => (
            vec![r.value],
            r.cut_darts.iter().map(|d| d.index()).collect(),
            r.rounds.query_total(),
        ),
        Outcome::ApproxMaxFlow(r) => (
            std::iter::once(r.value_numer)
                .chain(std::iter::once(r.denom))
                .chain(r.flow_numer.clone())
                .collect(),
            vec![r.f1.index(), r.f2.index()],
            r.rounds.query_total(),
        ),
        Outcome::ApproxMinStCut(r) => (vec![r.value], r.cut_edges.clone(), r.rounds.query_total()),
        Outcome::GlobalMinCut(r) => (
            std::iter::once(r.value)
                .chain(r.side.iter().map(|&b| Weight::from(b)))
                .collect(),
            r.cut_edges.clone(),
            r.rounds.query_total(),
        ),
        Outcome::Girth(r) => (vec![r.girth], r.cycle_edges.clone(), r.rounds.query_total()),
    }
}

/// (a) The acceptance-criterion test: the respecced solver shares the
/// topology substrate by pointer, and its batch answers are bit-for-bit
/// those of a freshly built solver over the same `(graph, caps, weights)`.
#[test]
fn respec_shares_topo_pointer_with_bit_for_bit_answers() {
    let (w, h) = (6usize, 5usize);
    let g = gen::diag_grid(w, h, 23).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 23);
    let weights = gen::random_edge_weights(g.num_edges(), 1, 9, 24);
    let queries = six_queries(w, g.num_vertices());

    let solver = PlanarSolver::builder(&g)
        .capacities(caps)
        .edge_weights(weights.clone())
        .build()
        .unwrap();
    assert!(solver.run_batch(&queries).all_ok(), "warm the original");

    let new_caps = gen::random_undirected_capacities(g.num_edges(), 2, 7, 99);
    let respecced = solver.respec_capacities(new_caps.clone()).unwrap();
    let shared: &Arc<TopoSubstrate> = solver.topo_substrate();
    assert!(
        Arc::ptr_eq(shared, respecced.topo_substrate()),
        "respec must share the Arc<TopoSubstrate>, not rebuild it"
    );

    // A fresh solver over the very same data, from scratch.
    let fresh = PlanarSolver::from_instance(
        PlanarInstance::new(g.clone(), Some(new_caps), Some(weights)).unwrap(),
    );
    assert!(
        !Arc::ptr_eq(shared, fresh.topo_substrate()),
        "the fresh build has its own topology tier"
    );

    let got = respecced.run_batch_on(&queries, 2);
    let want = fresh.run_batch_on(&queries, 2);
    assert!(got.all_ok() && want.all_ok());
    for (a, b) in got.outcomes.iter().zip(&want.outcomes) {
        assert_eq!(
            fingerprint(a.as_ref().unwrap()),
            fingerprint(b.as_ref().unwrap()),
            "respecced solver diverged from a fresh build"
        );
    }
    // Same bill, differently amortized: the respecced batch charged no new
    // topology rounds (they were paid by the original solver), the fresh
    // one paid them itself — yet the snapshots are identical because the
    // construction is deterministic per embedding.
    assert_eq!(got.rounds.total(), want.rounds.total());
    assert_eq!(solver.stats().engine_builds, 1, "one BDD for the pair");
    assert_eq!(respecced.stats().engine_builds, 1, "same shared counter");
    assert_eq!(fresh.stats().engine_builds, 1, "fresh build paid its own");
}

/// (b) Across a K-respec sweep the topology ledger never grows — the
/// substrate_topo share of every report is one constant snapshot — while
/// each spec pays its own weight tier.
#[test]
fn topology_rounds_are_charged_once_across_a_respec_sweep() {
    let g = gen::diag_grid(6, 4, 31).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 31);
    let base = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
    let t = g.num_vertices() - 1;
    base.max_flow(0, t).unwrap();
    base.global_min_cut().unwrap();
    let topo_rounds = base.substrate_topo_rounds().total();
    assert!(topo_rounds > 0);

    let mut current = base.clone();
    for k in 1..=4u64 {
        let caps_k = gen::random_undirected_capacities(g.num_edges(), 1, 9, 31 + k);
        current = current.respec_capacities(caps_k).unwrap();
        let flow = current.max_flow(0, t).unwrap();
        let cut = current.global_min_cut().unwrap();
        // The global cut is the cheapest directed cut anywhere, so it can
        // never exceed this particular st-cut (= st-flow).
        assert!(cut.value <= flow.value);
        // The topology ledger is frozen at its original total…
        assert_eq!(current.substrate_topo_rounds().total(), topo_rounds);
        assert_eq!(cut.rounds.substrate_topo.total(), topo_rounds);
        // …while this spec paid its own weight tier.
        assert!(cut.rounds.substrate_weight.total() > 0);
        assert_eq!(current.stats().label_builds, 1);
    }
    // One engine, one dual-diameter measurement for the whole sweep.
    assert_eq!(base.stats().engine_builds, 1);
    assert_eq!(current.stats().engine_builds, 1);
}

/// (c) The pool serves a respec storm off one cached topology: K tariff
/// scenarios on one network are K pool entries sharing one substrate.
#[test]
fn pool_serves_a_respec_sweep_from_one_topology() {
    let g = gen::diag_grid(5, 4, 41).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 41);
    let base = PlanarInstance::new(g, Some(caps), None).unwrap();
    let t = base.n() - 1;

    let pool = SolverPool::new(8);
    let first = pool.solver(&base);
    let mut keys = vec![InstanceKey::of(&base)];
    for k in 1..=4u64 {
        let caps_k = gen::random_undirected_capacities(base.m(), 1, 9, 41 + k);
        let spec = base.with_capacities(caps_k).unwrap();
        keys.push(InstanceKey::of(&spec));
        let solver = pool.solver(&spec);
        assert!(
            Arc::ptr_eq(first.topo_substrate(), solver.topo_substrate()),
            "scenario {k} reused the cached topology"
        );
        let flow = pool.run(&spec, Query::MaxFlow { s: 0, t }).unwrap();
        let fresh = PlanarSolver::from_instance(Arc::clone(&spec))
            .max_flow(0, t)
            .unwrap();
        assert_eq!(flow.as_max_flow().unwrap().value, fresh.value);
    }
    let stats = pool.stats();
    assert_eq!(stats.misses, 5, "each spec admitted once");
    assert_eq!(stats.respec_reuses, 4, "every later spec respecced");
    assert_eq!(stats.len, 5);
    assert_eq!(first.stats().engine_builds, 1, "one BDD for five entries");
    // All five keys remain addressable by key alone.
    for key in &keys {
        assert!(pool.contains(key));
        assert!(pool.run_keyed(key, Query::Girth).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (d) Respec is indistinguishable from a fresh build across all six
    /// query kinds, on random instances and random new capacities.
    #[test]
    fn respec_matches_fresh_build_on_all_six_query_kinds(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
        hi in 2i64..10,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, hi, seed + 1);
        let weights = gen::random_edge_weights(g.num_edges(), 1, hi, seed + 2);
        let queries = six_queries(w, g.num_vertices());

        let original = PlanarSolver::builder(&g)
            .capacities(caps)
            .edge_weights(weights.clone())
            .build()
            .unwrap();
        // Warm every tier of the original before respeccing, so the test
        // also covers "respec of a fully-built solver".
        prop_assert!(original.run_batch(&queries).all_ok());

        let new_caps = gen::random_undirected_capacities(g.num_edges(), 1, hi, seed + 3);
        let respecced = original.respec_capacities(new_caps.clone()).unwrap();
        prop_assert!(Arc::ptr_eq(
            original.topo_substrate(),
            respecced.topo_substrate()
        ));

        let fresh = PlanarSolver::from_instance(
            PlanarInstance::new(g.clone(), Some(new_caps), Some(weights)).unwrap(),
        );
        for &q in &queries {
            let a = respecced.run(q).unwrap();
            let b = fresh.run(q).unwrap();
            prop_assert_eq!(fingerprint(&a), fingerprint(&b), "{} diverged", q);
        }
        // The respec never rebuilt the topology tier.
        prop_assert_eq!(original.stats().engine_builds, 1);
        prop_assert_eq!(original.stats().dual_builds, 1);
    }
}
