//! Integration tests of the experiment subsystem through the public
//! meta-crate: spec round trips and refusals, replay runs that hold the
//! determinism contract, the saturation probe, the regression gate's
//! self-diff and synthetic-regression behavior, and the trajectory
//! report.

use duality::lab::spec::{GridCell, RampSettings, RunMode, ScenarioRef};
use duality::lab::{compare, render_trajectory, run_spec, LAB_SCHEMA_VERSION};
use duality::{EnvRow, Envelope, LabError, LabSpec, Tolerances};

fn replay_spec() -> LabSpec {
    LabSpec {
        name: "IT".into(),
        seed: 11,
        mode: RunMode::Replay,
        cells: vec![
            GridCell {
                workers: 1,
                shards: 1,
                smoke: true,
            },
            GridCell {
                workers: 2,
                shards: 1,
                smoke: false,
            },
        ],
        scenarios: vec![
            ScenarioRef::Preset {
                name: "steady-state".into(),
                smoke: true,
            },
            ScenarioRef::Preset {
                name: "failover-storm".into(),
                smoke: false,
            },
        ],
    }
}

/// Specs are durable: serialize, parse back, byte-stable re-serialize —
/// and documents from a future format version are refused, not misread.
#[test]
fn specs_round_trip_and_refuse_future_versions() {
    assert_eq!(LAB_SCHEMA_VERSION, 1);
    let spec = replay_spec();
    let text = spec.to_jsonl();
    let parsed = LabSpec::parse_jsonl(&text).unwrap();
    assert_eq!(parsed, spec);
    assert_eq!(parsed.to_jsonl(), text);

    let future = text.replace("\"schema_version\": 1", "\"schema_version\": 2");
    assert!(matches!(
        LabSpec::parse_jsonl(&future),
        Err(LabError::Parse { .. })
    ));
}

/// A replay run holds the bit-for-bit determinism contract in every
/// cell, and the envelope built from it round-trips through the
/// canonical writer and back.
#[test]
fn replay_runs_hold_the_contract_and_envelope_round_trips() {
    let spec = replay_spec();
    let rows = run_spec(&spec, false, None).unwrap();
    assert_eq!(rows.len(), 4, "2 scenarios x 2 cells");
    for row in &rows {
        assert_eq!(row.value("replay=serial"), Some(1.0), "{}", row.instance);
    }
    let envelope = Envelope::from_rows(&spec.name, spec.seed, false, rows);
    assert_eq!(envelope.scenarios, ["steady-state", "failover-storm"]);
    let parsed = Envelope::parse(&envelope.to_json()).unwrap();
    assert_eq!(parsed, envelope);
}

/// The saturation probe produces the capacity columns, and the derived
/// scaling-efficiency is exactly 1.0 on the 1-worker baseline cell.
#[test]
fn ramp_runs_report_capacity_and_efficiency() {
    let mut spec = replay_spec();
    // A deliberately easy round 0 (20 jps against a generous 50%
    // margin) so the probe always finds at least one sustainable round,
    // whatever machine the test runs on.
    spec.mode = RunMode::Ramp(RampSettings {
        initial_jps: 20,
        increment_jps: 500,
        round_jobs: 8,
        max_rounds: 2,
        p99_ceiling_us: None,
        margin_percent: 50,
        smoke_round_jobs: None,
        smoke_max_rounds: None,
    });
    let rows = run_spec(&spec, true, None).unwrap();
    assert_eq!(rows.len(), 1, "smoke keeps one scenario x one cell");
    let row = &rows[0];
    assert!(row.value("max-sustainable-jps").is_some());
    assert!(row.value("knee-p50-us").is_some());
    assert!(row.value("knee-p99-us").is_some());
    assert_eq!(row.value("scaling-efficiency"), Some(1.0));
}

/// The gate passes an envelope against itself and fails the synthetic
/// −20% throughput / +50% p99 row with a readable verdict.
#[test]
fn the_gate_passes_self_and_fails_synthetic_regressions() {
    let rows = run_spec(&replay_spec(), true, None).unwrap();
    let committed = Envelope::from_rows("IT", 11, true, rows);
    let tol = Tolerances::default();
    let report = compare::compare(&committed, &committed, &tol).unwrap();
    assert!(report.passed(), "{}", report.render());

    let mut fresh = committed.clone();
    for (name, v) in &mut fresh.rows[0].values {
        match name.as_str() {
            "throughput-jps" => *v *= 0.8,
            "p99-us" => *v *= 1.5,
            _ => {}
        }
    }
    let report = compare::compare(&committed, &fresh, &tol).unwrap();
    assert!(!report.passed());
    assert_eq!(report.regressions, 2);
    assert!(report.render().contains("FAIL steady-state, 1 wrk / 1 shd"));
}

/// The trajectory report tables every envelope it is given.
#[test]
fn the_trajectory_report_renders_rows() {
    let envelope = Envelope::from_rows(
        "S9",
        3,
        false,
        vec![EnvRow {
            experiment: "S9".into(),
            instance: "steady-state, 1 wrk / 1 shd".into(),
            n: 30,
            d: 9,
            values: vec![("max-sustainable-jps".into(), 1234.5)],
        }],
    );
    let text = render_trajectory(&[envelope]);
    assert!(text.contains("## S9 (seed 3, full run)"));
    assert!(text.contains("| steady-state, 1 wrk / 1 shd | 30 | 9 | 1234.50 |"));
}
