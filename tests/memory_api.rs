//! Integration tests for the byte-accounting surface:
//!
//! (a) a size-aware `SolverPool` enforces its byte budget by evicting
//!     the LRU entry — the eviction *order* follows recency, not
//!     insertion, and the byte gauges reconcile;
//! (b) a budget smaller than any single solver still serves (the pool
//!     never evicts below one entry);
//! (c) property test: `HeapSize` estimates are monotone — under COW
//!     respec the derived instance bills the same topology bytes as its
//!     donor (never more), and a solver's estimate only grows as its
//!     lazy substrate tiers build.

use duality::planar::gen;
use duality::{HeapSize, InstanceKey, PlanarInstance, PlanarSolver, Query, SolverPool};
use proptest::prelude::*;
use std::sync::Arc;

/// A keyed instance: a `w × h` diag grid with seeded capacities.
fn instance(w: usize, h: usize, seed: u64) -> Arc<PlanarInstance> {
    let g = gen::diag_grid(w, h, seed).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
    PlanarInstance::new(g, Some(caps), None).unwrap()
}

/// (a) Byte-budget eviction follows LRU order: with room for two of
/// three solvers, the entry a lookup touched most recently survives the
/// admission that breaches the budget.
#[test]
fn byte_budget_evicts_the_least_recently_used_entry() {
    let a = instance(4, 4, 1);
    let b = instance(5, 4, 2);
    let c = instance(5, 5, 3);
    // Un-queried pool entries hold no substrate, so their measured sizes
    // equal a fresh solver's over the same instance — exact budget math.
    let bytes: u64 = [&a, &b, &c]
        .iter()
        .map(|i| PlanarSolver::from_instance(Arc::clone(i)).heap_bytes() as u64)
        .sum();
    let pool = SolverPool::with_byte_budget(8, bytes - 1);
    assert_eq!(pool.byte_budget(), Some(bytes - 1));

    pool.solver(&a);
    pool.solver(&b);
    assert_eq!(pool.len(), 2, "two solvers fit the budget");
    assert_eq!(pool.stats().evictions, 0);

    // Touch `a`, making `b` the coldest entry…
    assert!(pool.get(&InstanceKey::of(&a)).is_some());
    // …then breach the budget: the third admission must evict `b`.
    pool.solver(&c);
    assert!(
        pool.contains(&InstanceKey::of(&a)),
        "recently touched: kept"
    );
    assert!(!pool.contains(&InstanceKey::of(&b)), "LRU: evicted");
    assert!(pool.contains(&InstanceKey::of(&c)), "just admitted: kept");

    let stats = pool.stats();
    assert_eq!(stats.evictions, 1);
    assert!(stats.evicted_bytes > 0, "the eviction released real bytes");
    assert!(
        stats.resident_bytes < bytes,
        "the gauge sits back under the budget"
    );
    assert!(stats.peak_resident_bytes > stats.resident_bytes);
    assert_eq!(stats.byte_budget, bytes - 1);
}

/// (b) A budget no solver can meet degrades to single-entry residency,
/// not to thrash-to-empty: every lookup still serves correct answers.
#[test]
fn an_unmeetable_budget_still_serves_one_entry() {
    let pool = SolverPool::with_byte_budget(8, 1);
    for seed in 1..=3u64 {
        let i = instance(4, 4, seed);
        let t = i.n() - 1;
        let flow = pool.run(&i, Query::MaxFlow { s: 0, t }).unwrap();
        assert!(flow.as_max_flow().unwrap().value > 0);
        assert_eq!(pool.len(), 1, "never evicted below one entry");
    }
    let stats = pool.stats();
    assert_eq!(stats.evictions, 2, "each admission displaced the last");
    assert!(stats.resident_bytes > 0, "the survivor is still billed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (c) Monotonicity of the estimates, on random instances:
    /// a COW respec shares the donor's graph allocation, so it reports
    /// *exactly* the donor's topology bytes (never more), and a solver's
    /// estimate never shrinks as queries build its substrate tiers.
    #[test]
    fn heap_estimates_are_monotone_under_respec_and_substrate_growth(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
    ) {
        let base = instance(w, h, seed);
        let respec = base
            .with_capacities(gen::random_undirected_capacities(
                base.m(), 2, 7, seed + 1,
            ))
            .unwrap();
        let spec_bytes = |i: &PlanarInstance| {
            (i.capacities().len() + i.edge_weights().len())
                * std::mem::size_of::<duality::planar::Weight>()
        };
        // The derived spec's bill is its donor's topology share plus its
        // own flat spec vectors — byte-identical topology, nothing more.
        prop_assert_eq!(
            base.heap_bytes() - spec_bytes(&base),
            respec.heap_bytes() - spec_bytes(&respec),
            "respec billed different topology bytes than its donor"
        );

        // Substrate growth only ever adds bytes.
        let solver = PlanarSolver::from_instance(respec);
        let cold = solver.heap_bytes();
        prop_assert!(cold > 0);
        solver.girth().unwrap();
        let warm = solver.heap_bytes();
        prop_assert!(warm >= cold, "building the weight tier shrank the bill");
        solver.max_flow(0, base.n() - 1).unwrap();
        prop_assert!(
            solver.heap_bytes() >= warm,
            "building the flow substrate shrank the bill"
        );
    }
}
