//! Integration tests for the owned, thread-safe solver and the typed
//! Query/Outcome batch API:
//!
//! (a) `PlanarSolver` / `PlanarInstance` are `Send + Sync` and a solver
//!     outlives the scope that built its graph;
//! (b) `run_batch` on ≥ 2 threads agrees bit-for-bit with serial
//!     execution of the same six-query S1 workload;
//! (c) the substrate is built exactly once under a multi-threaded batch
//!     and under concurrent queries from solver clones;
//! (d) duplicate queries are deduplicated;
//! (e) the merged `RoundReport` charges the substrate exactly once.

use duality::planar::{gen, PlanarGraph, Weight};
use duality::{Outcome, PlanarInstance, PlanarSolver, Query};
use std::sync::Arc;

/// (a) Compile-time evidence: the solver and instance cross threads.
#[test]
fn solver_and_instance_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlanarSolver>();
    assert_send_sync::<PlanarInstance>();
    assert_send_sync::<Query>();
    assert_send_sync::<Outcome>();
}

/// (a) The solver owns its instance: it survives the scope that built the
/// graph and can be moved into a spawned thread.
#[test]
fn solver_outlives_its_construction_scope() {
    let solver = {
        let g = gen::diag_grid(5, 4, 11).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 11);
        PlanarSolver::builder(&g).capacities(caps).build().unwrap()
        // `g` is dropped here; the solver keeps its own copy alive.
    };
    let t = solver.graph().num_vertices() - 1;
    let handle = std::thread::spawn(move || solver.max_flow(0, t).unwrap().value);
    assert!(handle.join().unwrap() > 0);
}

/// The six-query S1 workload: four max-flows between distinct corner
/// pairs, one global min cut, one girth.
fn s1_workload(g: &PlanarGraph, w: usize) -> Vec<Query> {
    let n = g.num_vertices();
    vec![
        Query::MaxFlow { s: 0, t: n - 1 },
        Query::MaxFlow { s: w - 1, t: n - w },
        Query::MaxFlow { s: 0, t: n - w },
        Query::MaxFlow { s: w - 1, t: n - 1 },
        Query::GlobalMinCut,
        Query::Girth,
    ]
}

fn s1_solver(g: &PlanarGraph, seed: u64) -> PlanarSolver {
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
    let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 1);
    PlanarSolver::builder(g)
        .capacities(caps)
        .edge_weights(weights)
        .build()
        .unwrap()
}

/// Every observable piece of an outcome that serial and batched execution
/// must agree on: values, witnesses, and the marginal round bill.
fn fingerprint(o: &Outcome) -> (Vec<Weight>, Vec<usize>, u64) {
    match o {
        Outcome::MaxFlow(r) => (
            std::iter::once(r.value).chain(r.flow.clone()).collect(),
            vec![r.probes as usize],
            r.rounds.query_total(),
        ),
        Outcome::MinStCut(r) => (
            vec![r.value],
            r.cut_darts.iter().map(|d| d.index()).collect(),
            r.rounds.query_total(),
        ),
        Outcome::ApproxMaxFlow(r) => (
            std::iter::once(r.value_numer)
                .chain(std::iter::once(r.denom))
                .chain(r.flow_numer.clone())
                .collect(),
            vec![r.f1.index(), r.f2.index()],
            r.rounds.query_total(),
        ),
        Outcome::ApproxMinStCut(r) => (vec![r.value], r.cut_edges.clone(), r.rounds.query_total()),
        Outcome::GlobalMinCut(r) => (
            std::iter::once(r.value)
                .chain(r.side.iter().map(|&b| Weight::from(b)))
                .collect(),
            r.cut_edges.clone(),
            r.rounds.query_total(),
        ),
        Outcome::Girth(r) => (vec![r.girth], r.cycle_edges.clone(), r.rounds.query_total()),
    }
}

/// (b) Batch-vs-serial agreement, bit for bit, across thread counts.
#[test]
fn batch_agrees_with_serial_on_the_s1_workload() {
    let g = gen::diag_grid(8, 6, 7).unwrap();
    let queries = s1_workload(&g, 8);

    // Serial: one solver, queries one at a time through `run`.
    let serial = s1_solver(&g, 7);
    let serial_outcomes: Vec<Outcome> = queries.iter().map(|&q| serial.run(q).unwrap()).collect();

    for threads in [2usize, 4] {
        let batched = s1_solver(&g, 7);
        let batch = batched.run_batch_on(&queries, threads);
        assert!(batch.all_ok());
        assert_eq!(batch.threads, threads.min(queries.len()));
        for (s, b) in serial_outcomes.iter().zip(&batch.outcomes) {
            assert_eq!(
                fingerprint(s),
                fingerprint(b.as_ref().unwrap()),
                "batch on {threads} threads diverged from serial"
            );
        }
        // Both paths built the substrate exactly once.
        assert_eq!(batched.stats().engine_builds, 1);
        assert_eq!(batched.stats().dual_builds, 1);
        assert_eq!(
            batched.substrate_rounds().total(),
            serial.substrate_rounds().total(),
            "identical substrate bill"
        );
    }
}

/// (c) Concurrent queries from clones of one solver: the `OnceLock`
/// substrate is built exactly once no matter how many threads race on it.
#[test]
fn substrate_builds_exactly_once_under_concurrency() {
    let g = gen::diag_grid(6, 5, 3).unwrap();
    let solver = s1_solver(&g, 3);
    let n = g.num_vertices();

    let values: Vec<Weight> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let solver = solver.clone();
                scope.spawn(move || match i % 3 {
                    0 => solver.max_flow(0, n - 1).unwrap().value,
                    1 => solver.global_min_cut().unwrap().value,
                    _ => solver.girth().unwrap().girth,
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All eight queries answered, one substrate.
    assert_eq!(values.len(), 8);
    let stats = solver.stats();
    assert_eq!(stats.engine_builds, 1, "engine raced but built once");
    assert_eq!(stats.dual_builds, 1, "dual raced but built once");
    assert_eq!(stats.queries, 8);
    // Same-kind answers are identical across threads.
    assert!(values.chunks(3).all(|c| c[0] == values[0]));
}

/// (c+e) A multi-threaded `run_batch` builds the substrate once and its
/// merged report charges it once.
#[test]
fn batch_substrate_once_and_merged_bill() {
    let g = gen::diag_grid(8, 6, 9).unwrap();
    let solver = s1_solver(&g, 9);
    let queries = s1_workload(&g, 8);
    let batch = solver.run_batch_on(&queries, 3);

    assert!(batch.all_ok());
    assert_eq!(solver.stats().engine_builds, 1);
    assert_eq!(solver.stats().dual_builds, 1);

    // The merged substrate share equals the solver's one-off ledger…
    let substrate = solver.substrate_rounds().total();
    assert!(substrate > 0);
    assert_eq!(batch.rounds.substrate_total(), substrate);
    // …and the total bills the substrate exactly once: total = substrate
    // + Σ marginal, while naive per-outcome summing would charge it 6×.
    let marginal_sum: u64 = batch
        .outcomes
        .iter()
        .map(|o| o.as_ref().unwrap().rounds().query_total())
        .sum();
    assert_eq!(batch.rounds.total(), substrate + marginal_sum);
    let naive: u64 = batch
        .outcomes
        .iter()
        .map(|o| o.as_ref().unwrap().rounds().total())
        .sum();
    assert_eq!(naive, 6 * substrate + marginal_sum);
}

/// (d) Duplicate queries execute once; every duplicate slot receives the
/// identical outcome.
#[test]
fn duplicates_are_executed_once() {
    let g = gen::diag_grid(5, 5, 13).unwrap();
    let solver = s1_solver(&g, 13);
    let n = g.num_vertices();
    let q = Query::MaxFlow { s: 0, t: n - 1 };
    let batch = solver.run_batch_on(&[q, Query::Girth, q, q, Query::Girth], 2);

    assert_eq!(batch.unique, 2);
    assert_eq!(batch.duplicates, 3);
    assert_eq!(solver.stats().queries, 2, "duplicates never re-executed");
    let flows: Vec<_> = [0usize, 2, 3]
        .iter()
        .map(|&i| fingerprint(batch.outcomes[i].as_ref().unwrap()))
        .collect();
    assert!(flows.iter().all(|f| *f == flows[0]));
}

/// Instance sharing: many solvers (different thresholds) over one
/// `Arc<PlanarInstance>` with zero graph copies.
#[test]
fn one_instance_many_solvers() {
    let g = gen::diag_grid(5, 4, 21).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 21);
    let instance = PlanarInstance::new(g, Some(caps), None).unwrap();
    let t = instance.graph().num_vertices() - 1;

    let base = PlanarSolver::from_instance(Arc::clone(&instance));
    let tuned = PlanarSolver::from_instance_with_threshold(Arc::clone(&instance), Some(6)).unwrap();
    assert_eq!(
        base.max_flow(0, t).unwrap().value,
        tuned.max_flow(0, t).unwrap().value
    );
    assert!(Arc::ptr_eq(base.instance(), tuned.instance()));
    // Each solver caches its own substrate (thresholds differ).
    assert_eq!(base.stats().engine_builds, 1);
    assert_eq!(tuned.stats().engine_builds, 1);
}
