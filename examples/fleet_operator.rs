//! Scenario: a day in the life of a fleet operator — running a
//! multi-tenant planar-flow serving fleet **declaratively**, through the
//! control plane.
//!
//! An operator of a real serving fleet does not pull levers one by one
//! (spawn a worker here, warm a cache there). They edit a *spec* — the
//! desired fleet state — and a controller drives the live system toward
//! it. This example runs that loop end to end:
//!
//! 1. **Launch**: a [`FleetSpec`] declares three grid tenants (two
//!    prewarmed), two workers, and blocking admission. The
//!    [`Reconciler`] observes the cold engine, diffs, plans, executes —
//!    and converges with every prewarmed solver warm.
//! 2. **Storm**: one declarative edit derates a region to 45% line
//!    capacity (served through the copy-on-write respec path, sharing
//!    the base grid's topology substrate), scales the workers up, and
//!    flips admission to load-shedding `Reject`. One push, one
//!    converged pass.
//! 3. **Attribution**: the fleet runs with the telemetry spine
//!    attached, so the operator's dump shows *which tenant* paid which
//!    latency — per-tenant wait/service split, not one fleet-wide
//!    histogram.
//! 4. **Restart**: the controller "crashes". A new one resumes from the
//!    hash-verified [`StateStore`] snapshot alone and converges back to
//!    the same fleet — the crash-recovery story.
//!
//! Run with: `cargo run --release --example fleet_operator`

use duality::workload::{FamilySpec, TenantRecord};
use duality::{
    AdmissionPolicy, FleetSpec, InstanceKey, Query, Reconciler, Slo, StateStore, Telemetry,
    TenantDecl,
};
use std::sync::Arc;

fn tenant(name: &str, family: FamilySpec, seed: u64, prewarm: bool) -> TenantDecl {
    TenantDecl {
        name: name.to_string(),
        record: TenantRecord {
            family,
            cap_range: (1, 9),
            weight_range: (1, 9),
            graph_seed: seed,
            cap_seed: seed + 100,
            weight_seed: seed + 200,
        },
        prewarm,
        derate_percent: 100,
        slo: Some(Slo {
            max_p99_us: Some(250_000),
            max_queue_depth: Some(24),
        }),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let snapshot_path = std::env::temp_dir().join(format!(
        "duality-fleet-operator-{}.jsonl",
        std::process::id()
    ));

    // -- 1. Launch: declare the fleet, let the controller realize it. --
    let spec = FleetSpec {
        name: "metro-grids".into(),
        revision: 1,
        workers: 2,
        shards: 2,
        queue_capacity: 64,
        pool_capacity: 8,
        admission: AdmissionPolicy::Block,
        tenants: vec![
            tenant("downtown", FamilySpec::DiagGrid { w: 6, h: 5 }, 11, true),
            tenant("harbor", FamilySpec::Apollonian { n: 9 }, 12, true),
            tenant("suburb", FamilySpec::Grid { w: 4, h: 4 }, 13, false),
        ],
    };
    println!("{spec}");
    println!("spec hash: {:016x}\n", spec.spec_hash());

    let telemetry = Arc::new(Telemetry::new(1024));
    let mut fleet = Reconciler::launch_with_telemetry(spec, Arc::clone(&telemetry))?;
    fleet.attach_store(StateStore::new(snapshot_path.clone()));
    let report = fleet.reconcile()?;
    println!(
        "launch converged in {} round(s), {} action(s):",
        report.rounds,
        report.actions.len()
    );
    for a in &report.actions {
        println!("  - {a}");
    }

    // Name the tenants in the telemetry ledger so the attribution dump
    // reads in operator terms, not topology fingerprints.
    for name in ["downtown", "harbor", "suburb"] {
        telemetry.name_tenant(fleet.instance(name).expect("spec'd tenant"), name);
    }

    // The fleet serves: a prewarmed tenant answers straight from its
    // warm shard solver.
    let downtown = Arc::clone(fleet.instance("downtown").expect("spec'd tenant"));
    let flow = fleet.engine().run(
        &downtown,
        Query::MaxFlow {
            s: 0,
            t: downtown.n() - 1,
        },
    )?;
    println!(
        "downtown max flow answered: {:?} rounds billed\n",
        flow.rounds().total()
    );

    // -- 2. Storm: one declarative edit reshapes the whole fleet. ------
    let mut storm = fleet.spec().clone();
    storm.revision += 1;
    storm.workers = 4; // surge the worker fleet
    storm.admission = AdmissionPolicy::Reject; // shed load at the door
    storm.tenants[0].derate_percent = 45; // downtown lines derated
    let report = fleet.push(storm)?;
    println!(
        "storm push converged in {} round(s), {} action(s):",
        report.rounds,
        report.actions.len()
    );
    for a in &report.actions {
        println!("  - {a}");
    }
    let derated = Arc::clone(fleet.instance("downtown").expect("spec'd tenant"));
    assert!(
        Arc::ptr_eq(downtown.graph_arc(), derated.graph_arc()),
        "the derated region is a COW respec of the base grid"
    );
    let storm_flow = fleet.engine().run(
        &derated,
        Query::MaxFlow {
            s: 0,
            t: derated.n() - 1,
        },
    )?;
    println!(
        "downtown under derate: flow recomputed on the shared topology substrate ({:?} rounds)\n",
        storm_flow.rounds().total()
    );

    // -- 3. Attribution: which tenant paid which latency? --------------
    // The engine's aggregate histogram cannot answer that; the
    // telemetry snapshot can — and the derated downtown still bills to
    // the same tenant, because attribution keys on the topology
    // fingerprint the COW respec preserves.
    let snap = telemetry.snapshot();
    println!("telemetry after the storm:\n{snap}");
    let downtown_stats = snap.by_name("downtown").expect("downtown served jobs");
    assert_eq!(
        downtown_stats.stats.completed, 2,
        "base + derated flow both attributed to downtown"
    );

    // -- 4. Crash + resume: the snapshot is the controller's memory. ---
    let obs_before = fleet.observe();
    fleet.shutdown(); // the "crash" (graceful here; the snapshot already exists)

    let mut recovered = Reconciler::resume(StateStore::new(snapshot_path.clone()))?;
    println!(
        "resumed from snapshot: spec r{} ({} tenants), hash verified",
        recovered.spec().revision,
        recovered.spec().tenants.len()
    );
    let report = recovered.reconcile()?;
    println!(
        "recovery converged in {} round(s), {} action(s)",
        report.rounds,
        report.actions.len()
    );
    let obs_after = recovered.observe();
    for (b, a) in obs_before.tenants.iter().zip(&obs_after.tenants) {
        assert_eq!(b.desired_key, a.desired_key, "same desired instances");
        assert_eq!(b.resident, a.resident, "same warm set");
    }
    assert_eq!(obs_after.workers_live, 4, "storm staffing restored");
    println!(
        "recovered fleet serves the same state: downtown key {}",
        InstanceKey::of(recovered.instance("downtown").unwrap())
    );

    let metrics = recovered.shutdown();
    println!("\nfinal fleet metrics:\n{metrics}");
    std::fs::remove_file(&snapshot_path)?;
    Ok(())
}
