//! The paper's core machinery, hands on: dual distance labels (Theorem
//! 2.1) and a dual SSSP tree (Lemma 2.2) with negative edge lengths.
//!
//! Run with: `cargo run --release --example dual_sssp_labels`

use duality::congest::{CostLedger, CostModel};
use duality::labeling::{sssp::dual_sssp, DualSsspEngine};
use duality::planar::{dual::DualView, gen, FaceId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = gen::diag_grid(7, 6, 11)?;
    let cm = CostModel::new(g.num_vertices(), g.diameter());
    println!(
        "primal: n = {}, faces (dual nodes) = {}, D = {}",
        g.num_vertices(),
        g.num_faces(),
        g.diameter()
    );

    // Mixed-sign dual arc lengths: forward darts cost 4, reversals -1
    // (no negative cycles on this instance — the engine would report one).
    let lengths: Vec<i64> = g.darts().map(|d| if d.is_forward() { 4 } else { -1 }).collect();

    // Build the engine (BDD + dual bags, Õ(D) rounds) and the labels
    // (Õ(D²) rounds).
    let mut ledger = CostLedger::new();
    let engine = DualSsspEngine::new(&g, &cm, None, &mut ledger);
    let labels = engine.labels(&lengths, &mut ledger)?;
    println!(
        "BDD: {} bags over {} levels; labels up to {} words (Õ(D) = Õ({}))",
        engine.bdd.bags.len(),
        engine.bdd.depth(),
        g.faces().map(|f| labels.label_words(f)).max().unwrap(),
        g.diameter()
    );

    // Any two labels decode their dual distance (Lemma 5.16).
    let (a, b) = (FaceId(0), FaceId(g.num_faces() as u32 - 1));
    println!("dist({a:?} → {b:?}) = {:?}", labels.decode(a, b));

    // A full SSSP tree from face 0, validated against Bellman–Ford.
    let tree = dual_sssp(&labels, &lengths, a, &mut ledger);
    assert!(tree.validate(&g, &lengths));
    let reference = DualView::new(&g, &lengths, |_| true)
        .bellman_ford(a)
        .expect("no negative cycle");
    for f in g.faces() {
        assert_eq!(tree.dist[f.index()], Some(reference[f.index()]));
    }
    println!("SSSP tree validated against centralized Bellman–Ford");
    println!("\nround bill:\n{ledger}");
    Ok(())
}
