//! The paper's core machinery, hands on: dual distance labels (Theorem
//! 2.1) and a dual SSSP tree (Lemma 2.2) with negative edge lengths,
//! accessed through the solver's cached substrate.
//!
//! Run with: `cargo run --release --example dual_sssp_labels`

use duality::congest::CostLedger;
use duality::labeling::sssp::dual_sssp;
use duality::planar::{dual::DualView, gen, FaceId};
use duality::PlanarSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = gen::diag_grid(7, 6, 11)?;
    println!(
        "primal: n = {}, faces (dual nodes) = {}, D = {}",
        g.num_vertices(),
        g.num_faces(),
        g.diameter()
    );

    // Mixed-sign dual arc lengths with no negative cycles by construction:
    // length(d) = 1 + π(face(d)) − π(face(rev d)) for arbitrary face
    // potentials π, so every dual cycle telescopes to its (positive) hop
    // count. Individual arcs still go as low as 1 − max π.
    let pi = |f: FaceId| (f.0 as i64 * 5) % 7;
    let lengths: Vec<i64> = g
        .darts()
        .map(|d| {
            let (from, to) = g.dual_arc(d);
            1 + pi(from) - pi(to)
        })
        .collect();

    // The solver owns the substrate; `labeling_engine()` hands out the
    // cached BDD + dual bags (built once, Õ(D) rounds, charged to the
    // substrate ledger) for custom labelings like this one.
    let solver = PlanarSolver::builder(&g)
        .edge_weights(vec![1; g.num_edges()])
        .build()?;
    let engine = solver.labeling_engine();
    let mut ledger = CostLedger::new();
    let labels = engine.labels(&lengths, &mut ledger)?;
    println!(
        "BDD: {} bags over {} levels; labels up to {} words (Õ(D) = Õ({}))",
        engine.bdd.bags.len(),
        engine.bdd.depth(),
        g.faces().map(|f| labels.label_words(f)).max().unwrap(),
        g.diameter()
    );

    // Any two labels decode their dual distance (Lemma 5.16).
    let (a, b) = (FaceId(0), FaceId(g.num_faces() as u32 - 1));
    println!("dist({a:?} → {b:?}) = {:?}", labels.decode(a, b));

    // A full SSSP tree from face 0, validated against Bellman–Ford.
    let tree = dual_sssp(&labels, &lengths, a, &mut ledger);
    assert!(tree.validate(&g, &lengths));
    let reference = DualView::new(&g, &lengths, |_| true)
        .bellman_ford(a)
        .expect("no negative cycle");
    for f in g.faces() {
        assert_eq!(tree.dist[f.index()], Some(reference[f.index()]));
    }
    println!("SSSP tree validated against centralized Bellman–Ford");
    println!(
        "\nsubstrate rounds (one-off):\n{}",
        solver.substrate_rounds()
    );
    println!("labeling rounds (per weight assignment):\n{ledger}");
    Ok(())
}
