//! Scenario: resilience analysis of a planar power distribution grid.
//!
//! Power grids are planar by construction (overhead lines rarely cross).
//! Two questions, two theorems, one solver:
//!
//! 1. *How much power can flow from the plant to the substation, quickly,
//!    if both sit on the network boundary?* — the `(1−ε)`-approximate
//!    st-planar max flow (Theorem 1.3) runs in `D·n^{o(1)}` rounds, far
//!    below the exact algorithm's `Õ(D²)`, at an accuracy we control.
//! 2. *What is the cheapest maintenance loop?* — inspecting a cycle of
//!    lines costs its total length; the weighted girth (Theorem 1.7) finds
//!    the minimum-weight cycle in near-optimal `Õ(D)` rounds.
//!
//! Run with: `cargo run --release --example power_grid_analysis`

use duality::baselines::flow::planar_max_flow_reference;
use duality::planar::gen;
use duality::PlanarSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Service area: 14x9 blocks, line capacities in MW.
    let g = gen::diag_grid(14, 9, 7)?;
    let capacity = gen::random_undirected_capacities(g.num_edges(), 5, 40, 1);
    // Plant at the north-west corner, substation at the north-east corner:
    // both on the outer face, so the st-planar fast path applies.
    let (plant, substation) = (0, 13);

    println!("grid: n = {}, D = {}", g.num_vertices(), g.diameter());
    let exact = planar_max_flow_reference(&g, &capacity, plant, substation);

    // Deliverable power at three accuracy settings, all on one solver: the
    // instance is validated once and the diameter measured once.
    let solver = PlanarSolver::builder(&g)
        .capacities(capacity.clone())
        .build()?;
    for k in [2u64, 8, 0] {
        let r = solver.approx_max_flow(plant, substation, k)?;
        let value = r.value_numer as f64 / r.denom as f64;
        let label = if k == 0 {
            "exact oracle".to_string()
        } else {
            format!("ε = 1/{k}     ")
        };
        println!(
            "{label}: deliverable power {value:.2} MW (optimum {exact}), {} rounds",
            r.rounds.total()
        );
    }

    // Cheapest maintenance loop by line length (here: 1 + 200/capacity, so
    // fat lines are cheap to walk). Different weights → a second solver;
    // the girth query runs on its cached dual graph.
    let length: Vec<i64> = (0..g.num_edges())
        .map(|e| 1 + 200 / capacity[2 * e])
        .collect();
    let loop_solver = PlanarSolver::builder(&g).edge_weights(length).build()?;
    let loop_ = loop_solver.girth()?;
    println!(
        "\ncheapest maintenance loop: length {} over {} lines, {} rounds",
        loop_.girth,
        loop_.cycle_edges.len(),
        loop_.rounds.total()
    );
    Ok(())
}
