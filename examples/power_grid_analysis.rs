//! Scenario: resilience analysis of a planar power distribution grid.
//!
//! Power grids are planar by construction (overhead lines rarely cross).
//! Two questions, two theorems, one solver:
//!
//! 1. *How much power can flow from the plant to the substation, quickly,
//!    if both sit on the network boundary?* — the `(1−ε)`-approximate
//!    st-planar max flow (Theorem 1.3) runs in `D·n^{o(1)}` rounds, far
//!    below the exact algorithm's `Õ(D²)`, at an accuracy we control.
//! 2. *What is the cheapest maintenance loop?* — inspecting a cycle of
//!    lines costs its total length; the weighted girth (Theorem 1.7) finds
//!    the minimum-weight cycle in near-optimal `Õ(D)` rounds.
//!
//! The three accuracy settings are phrased as one typed **batch**: the
//! solver deduplicates and fans the queries out over a worker pool, and
//! the merged round bill charges the shared substrate once.
//!
//! Run with: `cargo run --release --example power_grid_analysis`

use duality::baselines::flow::planar_max_flow_reference;
use duality::planar::gen;
use duality::{PlanarSolver, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Service area: 14x9 blocks, line capacities in MW.
    let g = gen::diag_grid(14, 9, 7)?;
    let capacity = gen::random_undirected_capacities(g.num_edges(), 5, 40, 1);
    // Plant at the north-west corner, substation at the north-east corner:
    // both on the outer face, so the st-planar fast path applies.
    let (plant, substation) = (0, 13);

    println!("grid: n = {}, D = {}", g.num_vertices(), g.diameter());
    let exact = planar_max_flow_reference(&g, &capacity, plant, substation);
    println!("optimum (centralized reference): {exact} MW\n");

    // Deliverable power at three accuracy settings, batched on one solver:
    // the instance is validated once, the diameter measured once, and the
    // queries run concurrently on the worker pool.
    let solver = PlanarSolver::builder(&g)
        .capacities(capacity.clone())
        .build()?;
    let accuracy_sweep: Vec<Query> = [2u64, 8, 0]
        .into_iter()
        .map(|k| Query::ApproxMaxFlow {
            s: plant,
            t: substation,
            eps_inverse: k,
        })
        .collect();
    let batch = solver.run_batch(&accuracy_sweep);
    for (query, outcome) in accuracy_sweep.iter().zip(&batch.outcomes) {
        println!("{query}: {}", outcome.as_ref().map_err(Clone::clone)?);
    }
    println!("\n{batch}");

    // Cheapest maintenance loop by line length (here: 1 + 200/capacity, so
    // fat lines are cheap to walk). Different weights → a second solver;
    // the girth query runs on its cached dual graph.
    let length: Vec<i64> = (0..g.num_edges())
        .map(|e| 1 + 200 / capacity[2 * e])
        .collect();
    let loop_solver = PlanarSolver::builder(&g).edge_weights(length).build()?;
    let loop_ = loop_solver.girth()?;
    println!("cheapest maintenance loop: {loop_}");
    Ok(())
}
