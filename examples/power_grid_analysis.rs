//! Scenario: resilience analysis of a planar power distribution grid.
//!
//! Power grids are planar by construction (overhead lines rarely cross).
//! Three questions, two theorems, **one topology substrate**:
//!
//! 1. *How much power can flow from the plant to the substation, quickly,
//!    if both sit on the network boundary?* — the `(1−ε)`-approximate
//!    st-planar max flow (Theorem 1.3) runs in `D·n^{o(1)}` rounds, far
//!    below the exact algorithm's `Õ(D²)`, at an accuracy we control.
//! 2. *What happens in a storm, when every line is derated to 60%?* — the
//!    same grid with new capacities. [`duality::PlanarSolver::respec_capacities`]
//!    answers it **without rebuilding** the diameter measurement, dual
//!    graph or decomposition: the respecced solver shares the original's
//!    `Arc<TopoSubstrate>` and the report's `substrate_topo` share is
//!    charged once across both scenarios.
//! 3. *What is the cheapest maintenance loop?* — inspecting a cycle of
//!    lines costs its total length; the weighted girth (Theorem 1.7) finds
//!    the minimum-weight cycle in near-optimal `Õ(D)` rounds — again on
//!    the same topology, via a weight-side respec.
//!
//! Run with: `cargo run --release --example power_grid_analysis`

use duality::baselines::flow::planar_max_flow_reference;
use duality::planar::gen;
use duality::{PlanarSolver, Query};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Service area: 14x9 blocks, line capacities in MW.
    let g = gen::diag_grid(14, 9, 7)?;
    let capacity = gen::random_undirected_capacities(g.num_edges(), 5, 40, 1);
    // Plant at the north-west corner, substation at the north-east corner:
    // both on the outer face, so the st-planar fast path applies.
    let (plant, substation) = (0, 13);

    println!("grid: n = {}, D = {}", g.num_vertices(), g.diameter());
    let exact = planar_max_flow_reference(&g, &capacity, plant, substation);
    println!("optimum (centralized reference): {exact} MW\n");

    // Deliverable power at three accuracy settings, batched on one solver:
    // the instance is validated once, the diameter measured once, and the
    // queries run concurrently on the worker pool.
    let solver = PlanarSolver::builder(&g)
        .capacities(capacity.clone())
        .build()?;
    println!("{}\n", solver.instance());
    let accuracy_sweep: Vec<Query> = [2u64, 8, 0]
        .into_iter()
        .map(|k| Query::ApproxMaxFlow {
            s: plant,
            t: substation,
            eps_inverse: k,
        })
        .collect();
    let batch = solver.run_batch(&accuracy_sweep);
    for (query, outcome) in accuracy_sweep.iter().zip(&batch.outcomes) {
        println!("{query}: {}", outcome.as_ref().map_err(Clone::clone)?);
    }
    println!("\n{batch}");

    // Storm scenario: every line derated to 60%. A respec, not a rebuild —
    // the new solver shares the topology substrate by pointer.
    let derated: Vec<i64> = capacity.iter().map(|&c| c * 3 / 5).collect();
    let storm = solver.respec_capacities(derated)?;
    assert!(Arc::ptr_eq(solver.topo_substrate(), storm.topo_substrate()));
    let storm_flow = storm.approx_max_flow(plant, substation, 8)?;
    println!("storm (lines at 60%): {storm_flow}");

    // Cheapest maintenance loop by line length (here: 1 + 200/capacity, so
    // fat lines are cheap to walk). New weights, same grid: a weight-side
    // respec; the girth query runs on the shared cached dual graph.
    let length: Vec<i64> = (0..g.num_edges())
        .map(|e| 1 + 200 / capacity[2 * e])
        .collect();
    let loop_solver = solver.respec_edge_weights(length)?;
    let loop_ = loop_solver.girth()?;
    println!("cheapest maintenance loop: {loop_}");

    // The audit trail: one topology bill for all three scenarios.
    assert_eq!(
        solver.stats().dual_builds,
        1,
        "one dual graph, respecs share it"
    );
    println!(
        "\ntopology substrate: {} rounds, charged once across {} scenarios",
        solver.substrate_topo_rounds().total(),
        3
    );
    Ok(())
}
