//! Scenario: storm-season resilience drill for a fleet of planar power
//! distribution grids — run as a **preset failover-storm workload**
//! through the serving engine.
//!
//! Power grids are planar by construction (overhead lines rarely cross),
//! and a grid operator's control room does not ask one question at a
//! time: it serves a season of traffic — routine flow/cut monitoring,
//! then a storm that derates every line and fails a few, then the
//! restore. The workload subsystem scripts exactly that drill:
//!
//! 1. `Scenario::preset("failover-storm", seed)` describes a fleet of
//!    grid tenants, a storm derate + edge-failure burst at landfall, the
//!    restore when it passes, and a flow/cut-heavy query mix — all under
//!    one seed.
//! 2. `Scenario::record` expands it into a durable [`Trace`]: every spec
//!    mutation rides the copy-on-write respec path (derated scenarios
//!    share each grid's topology substrate) and every event is stamped
//!    with the instance key it ran against. The JSONL round-trip below
//!    is the audit trail a real control room would archive.
//! 3. The driver replays the trace through a sharded [`ServiceEngine`]
//!    and the outcomes are checked **bit for bit** against serial
//!    `PlanarSolver::run` ground truth — the storm answers do not depend
//!    on how many workers or shards happened to serve them.
//!
//! Run with: `cargo run --release --example power_grid_analysis`

use duality::workload::driver::{self, DriverConfig};
use duality::workload::{Scenario, Trace, TraceEvent};
use duality::ServiceEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The drill script: three grid tenants, storm at tick 4, restore at
    // tick 8, flow/cut-heavy monitoring traffic throughout.
    let scenario = Scenario::preset("failover-storm", 7).expect("preset exists");
    let trace = scenario.record()?;
    println!(
        "drill `{}`: {} tenants, {} ticks, {} queries, {} storm respecs",
        scenario.name,
        trace.header.tenants.len(),
        trace.header.ticks,
        trace.query_count(),
        trace.respec_count()
    );
    for (i, t) in trace.header.tenants.iter().enumerate() {
        println!("  grid {i}: {}", t.family.label());
    }

    // The archive: record → serialize → parse back, nothing lost. A
    // trace on disk is a reproducible incident report.
    let jsonl = trace.to_jsonl();
    let restored = Trace::parse_jsonl(&jsonl)?;
    assert_eq!(restored, trace, "the JSONL round-trip is lossless");
    println!(
        "archived {} trace lines ({} bytes)\n",
        jsonl.lines().count(),
        jsonl.len()
    );

    // Ground truth: the same season answered serially, one fresh solver
    // per grid spec.
    let serial = driver::run_serial(&trace)?;
    println!(
        "serial ground truth: {} specs solved, {} substrate + {} query rounds",
        serial.solvers, serial.substrate_rounds, serial.query_rounds
    );

    // The drill itself: replay through the engine — four workers over
    // two shards, the storm's derated specs finding their donor solvers
    // by respec-reuse.
    let report = driver::drive(
        &trace,
        &DriverConfig {
            workers: 4,
            shards: 2,
            ..DriverConfig::default()
        },
    )?;
    let replayed: Vec<u64> = report
        .fingerprints
        .iter()
        .map(|f| f.expect("deadline-free replays complete"))
        .collect();
    assert_eq!(
        replayed, serial.fingerprints,
        "storm answers are bit-for-bit identical to serial ground truth"
    );
    println!(
        "engine replay: {} jobs at {:.0} jobs/s — outcomes match serial bit for bit",
        trace.query_count(),
        report.throughput_jps()
    );
    println!(
        "substrate amortization: engine billed {} rounds vs {} serial ({} respec-reuses)\n",
        report.metrics.substrate_rounds(),
        serial.substrate_rounds,
        report.metrics.pool_total().respec_reuses
    );
    println!("{}", report.metrics);

    // The storm is visible in the trace itself: the fleet's serviced
    // capacity dips while the derate + edge failures are in force.
    let jobs = trace.materialize()?;
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Respec { .. })),
        "storms respec"
    );
    let caps_of = |j: &duality::workload::TraceJob| -> i64 { j.instance.capacities().iter().sum() };
    let watched = jobs.first().expect("the drill has jobs").tenant;
    let pre_storm = caps_of(&jobs[0]);
    let trough = jobs
        .iter()
        .filter(|j| j.tenant == watched)
        .map(caps_of)
        .min()
        .expect("the watched grid is queried");
    println!("grid {watched} capacity: {pre_storm} MW pre-storm, {trough} MW at the trough");
    assert!(trough < pre_storm, "the storm derates the fleet");

    // The engine stays available for ad-hoc queries on the same fleet —
    // e.g. re-checking one grid after the drill.
    let engine = ServiceEngine::builder().workers(2).shards(2).build()?;
    let grid0 = &jobs[0].instance;
    let girth = engine.run(grid0, duality::Query::Girth)?;
    println!(
        "post-drill check, grid 0 cheapest loop: {}",
        girth.as_girth().expect("girth outcome")
    );
    Ok(())
}
