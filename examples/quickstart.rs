//! Quickstart: compute an exact maximum st-flow on a small planar network
//! and inspect the distributed round bill.
//!
//! Run with: `cargo run --release --example quickstart`

use duality::baselines::flow::planar_max_flow_reference;
use duality::core::max_flow::{max_st_flow, MaxFlowOptions};
use duality::planar::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A randomly triangulated 8x6 grid: 48 vertices, diameter 12.
    let g = gen::diag_grid(8, 6, 42)?;
    println!(
        "network: n = {}, m = {}, faces = {}, D = {}",
        g.num_vertices(),
        g.num_edges(),
        g.num_faces(),
        g.diameter()
    );

    // Random directed capacities in [1, 9]; route from corner to corner.
    let caps = gen::random_directed_capacities(g.num_edges(), 1, 9, 7);
    let (s, t) = (0, g.num_vertices() - 1);

    // The paper's Õ(D²)-round algorithm: O(log λ) dual-SSSP probes over the
    // bounded-diameter decomposition (Theorem 1.2).
    let result = max_st_flow(&g, &caps, s, t, &MaxFlowOptions::default())?;
    println!("max {s} → {t} flow value: {}", result.value);
    println!("dual-SSSP probes: {}", result.probes);
    println!("\nround bill:\n{}", result.ledger);

    // Cross-check against centralized Dinic.
    let reference = planar_max_flow_reference(&g, &caps, s, t);
    assert_eq!(result.value, reference);
    println!("verified against centralized Dinic: {reference}");

    // The assignment is a real flow: print the per-edge loads on the
    // saturated darts.
    let saturated = g
        .darts()
        .filter(|d| result.flow[d.index()] == caps[d.index()] && caps[d.index()] > 0)
        .count();
    println!("saturated darts: {saturated}");
    Ok(())
}
