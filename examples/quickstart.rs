//! Quickstart: build one `PlanarSolver`, compute an exact maximum st-flow
//! and its certifying min st-cut, and inspect the amortized round bill.
//!
//! Run with: `cargo run --release --example quickstart`

use duality::baselines::flow::planar_max_flow_reference;
use duality::planar::gen;
use duality::PlanarSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A randomly triangulated 8x6 grid: 48 vertices, diameter 12.
    let g = gen::diag_grid(8, 6, 42)?;
    println!(
        "network: n = {}, m = {}, faces = {}, D = {}",
        g.num_vertices(),
        g.num_edges(),
        g.num_faces(),
        g.diameter()
    );

    // Random directed capacities in [1, 9]; route from corner to corner.
    let caps = gen::random_directed_capacities(g.num_edges(), 1, 9, 7);
    let (s, t) = (0, g.num_vertices() - 1);

    // One solver: the instance is validated once, the substrate (diameter
    // estimate, BDD, dual bags) is built lazily on first use and cached.
    let solver = PlanarSolver::builder(&g).capacities(caps.clone()).build()?;

    // The paper's Õ(D²)-round algorithm: O(log λ) dual-SSSP probes over the
    // bounded-diameter decomposition (Theorem 1.2).
    let flow = solver.max_flow(s, t)?;
    println!("max {s} → {t} flow value: {}", flow.value);
    println!("dual-SSSP probes: {}", flow.probes);
    println!("\nround bill (substrate is amortized):\n{}", flow.rounds);

    // A second query on the same solver reuses the cached decomposition —
    // it pays only its marginal rounds.
    let cut = solver.min_st_cut(s, t)?;
    assert_eq!(cut.value, flow.value, "max-flow min-cut duality");
    println!(
        "certifying min cut: {} darts, {} marginal rounds (engine builds: {})",
        cut.cut_darts.len(),
        cut.rounds.query_total(),
        solver.stats().engine_builds
    );

    // Cross-check against centralized Dinic.
    let reference = planar_max_flow_reference(&g, &caps, s, t);
    assert_eq!(flow.value, reference);
    println!("verified against centralized Dinic: {reference}");

    // The assignment is a real flow: print the per-edge loads on the
    // saturated darts.
    let saturated = g
        .darts()
        .filter(|d| flow.flow[d.index()] == caps[d.index()] && caps[d.index()] > 0)
        .count();
    println!("saturated darts: {saturated}");
    Ok(())
}
