//! Scenario: bottleneck analysis of a road network.
//!
//! Road networks are the paper's motivating planar workload. We model a
//! city district as a randomly triangulated grid whose edge capacities are
//! lane counts, and answer two planning questions distributedly **on one
//! solver** — the second query reuses the decomposition the first one paid
//! for:
//!
//! 1. *What is the worst-case s→t throughput, and which streets form the
//!    bottleneck?* — exact directed min st-cut (Theorem 6.1).
//! 2. *How fragile is the network overall?* — directed global minimum cut
//!    (Theorem 1.5): the cheapest set of one-way closures that cuts some
//!    part of the city off.
//!
//! Run with: `cargo run --release --example road_network_cut`

use duality::core::verify;
use duality::planar::gen;
use duality::PlanarSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // District: 9x7 blocks with diagonal shortcuts; lanes in [1, 4].
    let g = gen::diag_grid(9, 7, 2024)?;
    let lanes = gen::random_edge_weights(g.num_edges(), 1, 4, 99);

    // Directed capacities (one-way streets) are derived from the per-edge
    // lane counts by the builder: forward darts carry the lanes, reversals
    // are closed.
    let solver = PlanarSolver::builder(&g).edge_weights(lanes).build()?;

    let (depot, stadium) = (0, g.num_vertices() - 1);
    let cut = solver.min_st_cut(depot, stadium)?;
    println!(
        "depot → stadium throughput: {} lanes ({} bottleneck streets)",
        cut.value,
        cut.cut_darts.len()
    );
    println!(
        "bottleneck streets: {:?}",
        cut.cut_darts
            .iter()
            .map(|d| (g.tail(*d), g.head(*d)))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        verify::directed_cut_capacity(&g, solver.capacities(), &cut.side),
        cut.value
    );

    // Global fragility: the cheapest directed disconnection anywhere. Same
    // solver, same cached BDD — only the marginal rounds are new.
    let global = solver.global_min_cut()?;
    let isolated = global.side.iter().filter(|&&b| !b).count();
    println!(
        "\nglobal fragility: {} lanes of closures isolate {} intersections",
        global.value, isolated
    );
    println!(
        "rounds: st-cut = {} (substrate {} + query {}), global marginal = {}",
        cut.rounds.total(),
        cut.rounds.substrate_total(),
        cut.rounds.query_total(),
        global.rounds.query_total()
    );
    assert_eq!(
        solver.stats().engine_builds,
        1,
        "both cut queries shared one decomposition"
    );
    Ok(())
}
