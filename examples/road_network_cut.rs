//! Scenario: bottleneck analysis of a road network.
//!
//! Road networks are the paper's motivating planar workload. We model a
//! city district as a randomly triangulated grid whose edge capacities are
//! lane counts, and answer two planning questions distributedly as **one
//! typed batch on one solver** — both queries share the decomposition, the
//! merged bill charges it once, and a duplicated query costs nothing:
//!
//! 1. *What is the worst-case s→t throughput, and which streets form the
//!    bottleneck?* — exact directed min st-cut (Theorem 6.1).
//! 2. *How fragile is the network overall?* — directed global minimum cut
//!    (Theorem 1.5): the cheapest set of one-way closures that cuts some
//!    part of the city off.
//!
//! Run with: `cargo run --release --example road_network_cut`

use duality::core::verify;
use duality::planar::gen;
use duality::{PlanarSolver, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // District: 9x7 blocks with diagonal shortcuts; lanes in [1, 4].
    let g = gen::diag_grid(9, 7, 2024)?;
    let lanes = gen::random_edge_weights(g.num_edges(), 1, 4, 99);

    // Directed capacities (one-way streets) are derived from the per-edge
    // lane counts by the builder: forward darts carry the lanes, reversals
    // are closed.
    let solver = PlanarSolver::builder(&g).edge_weights(lanes).build()?;

    let (depot, stadium) = (0, g.num_vertices() - 1);
    let batch = solver.run_batch(&[
        Query::MinStCut {
            s: depot,
            t: stadium,
        },
        Query::GlobalMinCut,
        // A dashboard refresh re-asking the same question: deduplicated,
        // answered from the single execution above.
        Query::MinStCut {
            s: depot,
            t: stadium,
        },
    ]);
    println!("{batch}");

    let cut = batch.outcomes[0]
        .as_ref()
        .map_err(Clone::clone)?
        .as_min_st_cut()
        .expect("outcome matches its query")
        .clone();
    println!("depot → stadium: {cut}");
    println!(
        "bottleneck streets: {:?}",
        cut.cut_darts
            .iter()
            .map(|d| (g.tail(*d), g.head(*d)))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        verify::directed_cut_capacity(&g, solver.capacities(), &cut.side),
        cut.value
    );

    // Global fragility: the cheapest directed disconnection anywhere. Same
    // solver, same cached BDD — only the marginal rounds were new.
    let global = batch.outcomes[1]
        .as_ref()
        .map_err(Clone::clone)?
        .as_global_min_cut()
        .expect("outcome matches its query");
    println!("global fragility: {global}");
    assert_eq!(
        solver.stats().engine_builds,
        1,
        "both cut queries shared one decomposition"
    );
    assert_eq!(batch.duplicates, 1, "the dashboard refresh was free");
    Ok(())
}
