//! Scenario: bottleneck analysis of a road network.
//!
//! Road networks are the paper's motivating planar workload. We model a
//! city district as a randomly triangulated grid whose edge capacities are
//! lane counts, and answer two planning questions distributedly:
//!
//! 1. *What is the worst-case s→t throughput, and which streets form the
//!    bottleneck?* — exact directed min st-cut (Theorem 6.1).
//! 2. *How fragile is the network overall?* — directed global minimum cut
//!    (Theorem 1.5): the cheapest set of one-way closures that cuts some
//!    part of the city off.
//!
//! Run with: `cargo run --release --example road_network_cut`

use duality::core::global_cut::directed_global_min_cut;
use duality::core::st_cut::exact_min_st_cut;
use duality::core::verify;
use duality::planar::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // District: 9x7 blocks with diagonal shortcuts; lanes in [1, 4].
    let g = gen::diag_grid(9, 7, 2024)?;
    let lanes = gen::random_edge_weights(g.num_edges(), 1, 4, 99);
    // Directed capacities: each street is one-way along its orientation.
    let mut caps = vec![0; g.num_darts()];
    for (e, &l) in lanes.iter().enumerate() {
        caps[2 * e] = l;
    }

    let (depot, stadium) = (0, g.num_vertices() - 1);
    let cut = exact_min_st_cut(&g, &caps, depot, stadium, &Default::default())?;
    println!(
        "depot → stadium throughput: {} lanes ({} bottleneck streets)",
        cut.value,
        cut.cut_darts.len()
    );
    println!(
        "bottleneck streets: {:?}",
        cut.cut_darts
            .iter()
            .map(|d| (g.tail(*d), g.head(*d)))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        verify::directed_cut_capacity(&g, &caps, &cut.side),
        cut.value
    );

    // Global fragility: the cheapest directed disconnection anywhere.
    let global = directed_global_min_cut(&g, &lanes).expect("district has 2+ intersections");
    let isolated = global.side.iter().filter(|&&b| !b).count();
    println!(
        "\nglobal fragility: {} lanes of closures isolate {} intersections",
        global.value, isolated
    );
    println!(
        "rounds: st-cut = {}, global = {}",
        cut.ledger.total(),
        global.ledger.total()
    );
    Ok(())
}
