//! Scenario: bottleneck analysis of a road network, served from a pool.
//!
//! Road networks are the paper's motivating planar workload. We model a
//! city district as a randomly triangulated grid whose edge capacities are
//! lane counts, and answer two planning questions distributedly as **one
//! typed batch** — both queries share the decomposition, the merged bill
//! charges it once, and a duplicated query costs nothing:
//!
//! 1. *What is the worst-case s→t throughput, and which streets form the
//!    bottleneck?* — exact directed min st-cut (Theorem 6.1).
//! 2. *How fragile is the network overall?* — directed global minimum cut
//!    (Theorem 1.5): the cheapest set of one-way closures that cuts some
//!    part of the city off.
//!
//! The serving layer is a [`duality::SolverPool`]: the dashboard backend
//! hands it instances (keyed by graph fingerprint + spec hash) and the
//! pool caches solvers with LRU eviction. When rush hour re-specs the
//! lane counts, the pool admits the new scenario by **respeccing** the
//! cached solver — the dual graph and decomposition are reused, visible
//! in the `respec_reuses` counter and the shared `substrate_topo` bill.
//!
//! Run with: `cargo run --release --example road_network_cut`

use duality::core::verify;
use duality::planar::gen;
use duality::{InstanceKey, PlanarInstance, Query, SolverPool};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // District: 9x7 blocks with diagonal shortcuts; lanes in [1, 4].
    let g = gen::diag_grid(9, 7, 2024)?;
    let lanes = gen::random_edge_weights(g.num_edges(), 1, 4, 99);

    // Directed capacities (one-way streets) are derived from the per-edge
    // lane counts by the instance: forward darts carry the lanes,
    // reversals are closed.
    let weekday = PlanarInstance::new(g.clone(), None, Some(lanes.clone()))?;
    println!("{}", weekday);
    let (depot, stadium) = (0, weekday.n() - 1);

    // The serving front door: a keyed pool, as a dashboard backend holds.
    let pool = SolverPool::new(16);
    let batch = pool.run_batch(
        &weekday,
        &[
            Query::MinStCut {
                s: depot,
                t: stadium,
            },
            Query::GlobalMinCut,
            // A dashboard refresh re-asking the same question: deduplicated,
            // answered from the single execution above.
            Query::MinStCut {
                s: depot,
                t: stadium,
            },
        ],
    );
    println!("{batch}");

    let cut = batch.outcomes[0]
        .as_ref()
        .map_err(Clone::clone)?
        .as_min_st_cut()
        .expect("outcome matches its query")
        .clone();
    println!("depot → stadium: {cut}");
    println!(
        "bottleneck streets: {:?}",
        cut.cut_darts
            .iter()
            .map(|d| (g.tail(*d), g.head(*d)))
            .collect::<Vec<_>>()
    );
    let weekday_solver = pool.solver(&weekday);
    assert_eq!(
        verify::directed_cut_capacity(&g, weekday_solver.capacities(), &cut.side),
        cut.value
    );

    // Global fragility: the cheapest directed disconnection anywhere. Same
    // pooled solver, same cached BDD — only the marginal rounds were new.
    let global = batch.outcomes[1]
        .as_ref()
        .map_err(Clone::clone)?
        .as_global_min_cut()
        .expect("outcome matches its query");
    println!("global fragility: {global}");
    assert_eq!(batch.duplicates, 1, "the dashboard refresh was free");

    // Rush hour: contraflow doubles every lane. A copy-on-write respec of
    // the instance (capacities and weights both follow the new lanes, the
    // graph allocation is shared), admitted to the pool by respeccing the
    // cached weekday solver.
    let rush_lanes: Vec<i64> = lanes.iter().map(|&l| 2 * l).collect();
    let mut rush_caps = vec![0; g.num_darts()];
    for (e, &l) in rush_lanes.iter().enumerate() {
        rush_caps[2 * e] = l;
    }
    let rush_hour = weekday
        .with_capacities(rush_caps)?
        .with_edge_weights(rush_lanes)?;
    let rush_cut = pool.run(
        &rush_hour,
        Query::MinStCut {
            s: depot,
            t: stadium,
        },
    )?;
    let rush_cut = rush_cut.as_min_st_cut().expect("outcome matches its query");
    println!("rush hour depot → stadium: {rush_cut}");
    assert_eq!(rush_cut.value, 2 * cut.value, "doubled lanes, doubled cut");

    // The audit trail: one cached topology served both scenarios, and both
    // stay addressable by key.
    let stats = pool.stats();
    println!("{stats}");
    assert_eq!(stats.respec_reuses, 1, "rush hour reused the topology");
    assert_eq!(
        weekday_solver.stats().engine_builds,
        1,
        "all cut queries of both scenarios shared one decomposition"
    );
    assert!(pool.contains(&InstanceKey::of(&weekday)));
    assert!(pool.contains(&InstanceKey::of(&rush_hour)));
    Ok(())
}
