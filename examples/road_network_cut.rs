//! Scenario: bottleneck analysis of a road network, served by the engine.
//!
//! Road networks are the paper's motivating planar workload. We model a
//! city district as a randomly triangulated grid whose edge capacities are
//! lane counts, and answer two planning questions distributedly:
//!
//! 1. *What is the worst-case s→t throughput, and which streets form the
//!    bottleneck?* — exact directed min st-cut (Theorem 6.1).
//! 2. *How fragile is the network overall?* — directed global minimum cut
//!    (Theorem 1.5): the cheapest set of one-way closures that cuts some
//!    part of the city off.
//!
//! The serving layer is a [`duality::ServiceEngine`] — what a dashboard
//! backend actually runs: requests are **submitted** as `(instance,
//! query)` jobs into a bounded queue, executed by a worker pool over
//! sharded solver pools, and collected asynchronously via typed
//! [`Ticket`]s. When rush hour re-specs the lane counts, the new scenario
//! routes to the same shard (shard routing is by topology fingerprint)
//! and is admitted by **respeccing** the cached weekday solver — the dual
//! graph and decomposition are reused, visible in the engine's metrics
//! snapshot (`respec-reuses`, and one engine build across both
//! scenarios).
//!
//! Run with: `cargo run --release --example road_network_cut`

use duality::core::verify;
use duality::planar::gen;
use duality::{PlanarInstance, Query, ServiceEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // District: 9x7 blocks with diagonal shortcuts; lanes in [1, 4].
    let g = gen::diag_grid(9, 7, 2024)?;
    let lanes = gen::random_edge_weights(g.num_edges(), 1, 4, 99);

    // Directed capacities (one-way streets) are derived from the per-edge
    // lane counts by the instance: forward darts carry the lanes,
    // reversals are closed.
    let weekday = PlanarInstance::new(g.clone(), None, Some(lanes.clone()))?;
    println!("{}", weekday);
    let (depot, stadium) = (0, weekday.n() - 1);

    // The serving front door: two shards, two workers, bounded queue.
    let engine = ServiceEngine::builder().shards(2).workers(2).build()?;

    // The dashboard submits both questions and renders as tickets resolve.
    let cut_ticket = engine.submit(
        &weekday,
        Query::MinStCut {
            s: depot,
            t: stadium,
        },
    )?;
    let global_ticket = engine.submit(&weekday, Query::GlobalMinCut)?;

    let cut = cut_ticket
        .wait()?
        .as_min_st_cut()
        .expect("outcome matches its query")
        .clone();
    println!("depot → stadium: {cut}");
    println!(
        "bottleneck streets: {:?}",
        cut.cut_darts
            .iter()
            .map(|d| (g.tail(*d), g.head(*d)))
            .collect::<Vec<_>>()
    );
    // The audit hatch exposes the exact pooled solver the worker used.
    let weekday_solver = engine.solver(&weekday);
    assert_eq!(
        verify::directed_cut_capacity(&g, weekday_solver.capacities(), &cut.side),
        cut.value
    );

    // Global fragility: the cheapest directed disconnection anywhere.
    // Same pooled solver, same cached BDD — only the marginal rounds were
    // new.
    let global = global_ticket.wait()?;
    let global = global
        .as_global_min_cut()
        .expect("outcome matches its query");
    println!("global fragility: {global}");

    // A dashboard refresh re-asking the same question: served by the
    // cached solver (a pool hit), costing only the marginal query rounds.
    let refresh = engine.run(
        &weekday,
        Query::MinStCut {
            s: depot,
            t: stadium,
        },
    )?;
    assert_eq!(
        refresh.as_min_st_cut().expect("matches").value,
        cut.value,
        "the refresh answered from the same cached solver"
    );

    // Rush hour: contraflow doubles every lane. A copy-on-write respec of
    // the instance (capacities and weights both follow the new lanes, the
    // graph allocation is shared) routes to the weekday shard and is
    // admitted by respeccing the cached weekday solver.
    let rush_lanes: Vec<i64> = lanes.iter().map(|&l| 2 * l).collect();
    let mut rush_caps = vec![0; g.num_darts()];
    for (e, &l) in rush_lanes.iter().enumerate() {
        rush_caps[2 * e] = l;
    }
    let rush_hour = weekday
        .with_capacities(rush_caps)?
        .with_edge_weights(rush_lanes)?;
    let rush_cut = engine.run(
        &rush_hour,
        Query::MinStCut {
            s: depot,
            t: stadium,
        },
    )?;
    let rush_cut = rush_cut.as_min_st_cut().expect("outcome matches its query");
    println!("rush hour depot → stadium: {rush_cut}");
    assert_eq!(rush_cut.value, 2 * cut.value, "doubled lanes, doubled cut");

    // The audit trail: the engine drained cleanly, one cached topology
    // served both scenarios, and the live metrics say so.
    assert_eq!(
        weekday_solver.stats().engine_builds,
        1,
        "all cut queries of both scenarios shared one decomposition"
    );
    let metrics = engine.shutdown();
    println!("{metrics}");
    assert_eq!(metrics.completed, 4, "four dashboard queries served");
    assert_eq!(metrics.in_flight(), 0, "shutdown drained everything");
    let pool = metrics.pool_total();
    assert_eq!(pool.respec_reuses, 1, "rush hour reused the topology");
    assert_eq!(pool.len, 2, "both scenarios stay cached");
    Ok(())
}
