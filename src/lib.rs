//! # duality — Distributed Maximum Flow in Planar Graphs
//!
//! A reproduction of *"Distributed Maximum Flow in Planar Graphs"*
//! (Abd-Elhaleem, Dory, Parter, Weimann — PODC 2025) as a Rust library.
//!
//! The paper develops a toolkit for running distributed CONGEST algorithms
//! on the **dual** `G*` of a planar network `G` while communicating only
//! over `G`, and uses it to obtain:
//!
//! * exact maximum st-flow in directed planar graphs in `Õ(D²)` rounds,
//! * `(1−o(1))`-approximate max st-flow in undirected st-planar graphs in
//!   `D·n^{o(1)}` rounds,
//! * exact directed minimum st-cut (`Õ(D²)`) and approximate st-planar
//!   minimum st-cut (`D·n^{o(1)}`),
//! * directed global minimum cut in `Õ(D²)` rounds,
//! * weighted girth in `Õ(D)` rounds.
//!
//! This meta-crate re-exports the whole workspace. Start with
//! [`core`](duality_core) for the headline algorithms, or [`planar`] for the
//! graph substrate. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduction results.
//!
//! # Quickstart
//!
//! ```
//! use duality::planar::gen;
//! use duality::core::max_flow::{self, MaxFlowOptions};
//!
//! let g = gen::diag_grid(4, 4, 7).unwrap();
//! let caps = gen::random_directed_capacities(g.num_edges(), 1, 8, 7);
//! let result = max_flow::max_st_flow(&g, &caps, 0, g.num_vertices() - 1,
//!                                    &MaxFlowOptions::default()).unwrap();
//! assert!(result.value > 0);
//! ```

pub use duality_baselines as baselines;
pub use duality_bdd as bdd;
pub use duality_congest as congest;
pub use duality_core as core;
pub use duality_labeling as labeling;
pub use duality_minor_agg as minor_agg;
pub use duality_overlay as overlay;
pub use duality_planar as planar;
