//! # duality — Distributed Maximum Flow in Planar Graphs
//!
//! A reproduction of *"Distributed Maximum Flow in Planar Graphs"*
//! (Abd-Elhaleem, Dory, Parter, Weimann — PODC 2025) as a Rust library.
//!
//! The paper develops a toolkit for running distributed CONGEST algorithms
//! on the **dual** `G*` of a planar network `G` while communicating only
//! over `G`, and uses it to obtain:
//!
//! * exact maximum st-flow in directed planar graphs in `Õ(D²)` rounds,
//! * `(1−o(1))`-approximate max st-flow in undirected st-planar graphs in
//!   `D·n^{o(1)}` rounds,
//! * exact directed minimum st-cut (`Õ(D²)`) and approximate st-planar
//!   minimum st-cut (`D·n^{o(1)}`),
//! * directed global minimum cut in `Õ(D²)` rounds,
//! * weighted girth in `Õ(D)` rounds.
//!
//! All five results are served by one façade, [`PlanarSolver`]: build it
//! once over an instance and the expensive shared substrate is
//! constructed lazily, cached, and amortized across every query — in
//! **two tiers**. The [`TopoSubstrate`] (dual graph, bounded-diameter
//! branch decomposition, distance-labeling engine) is keyed by the
//! embedding alone; the weight tier (instance-length distance labels) is
//! keyed by the current capacities/weights. Re-speccing the same network
//! — new tariffs, new line ratings — is copy-on-write end to end:
//! [`PlanarInstance::with_capacities`] /
//! [`PlanarInstance::with_edge_weights`] share the graph allocation, and
//! [`PlanarSolver::respec`] returns a solver sharing the
//! `Arc<TopoSubstrate>`, rebuilding only the weight tier, so a K-scenario
//! sweep pays the topology rounds once. The solver **owns** its validated
//! instance (an `Arc`-shared [`PlanarInstance`]), is `Send + Sync`, and
//! clones in `O(1)`, so it can serve query traffic from many threads
//! while building each substrate artifact exactly once. Queries are
//! first-class values ([`Query`] → [`Outcome`] via
//! [`PlanarSolver::run`]), and [`PlanarSolver::run_batch`] executes a
//! heterogeneous, deduplicated batch on a worker pool. Every query
//! returns a typed witness plus a [`RoundReport`](congest::RoundReport)
//! splitting the CONGEST bill into `substrate_topo` / `substrate_weight`
//! / marginal `query` shares (batches merge to one bill that charges the
//! substrate once); every failure is the single [`DualityError`] type.
//! For serving many instances, [`SolverPool`] maps cheap [`InstanceKey`]s
//! to cached solvers with LRU eviction and respec-reuse — and
//! [`ServiceEngine`] puts a full serving surface on top: instance keys
//! hash-partitioned across independent pool shards, a bounded
//! work-stealing scheduler ([`sched`]: per-worker deques with a global
//! overflow injector) with `Reject`/`Block` admission control, per-job
//! deadlines and cancellation, graceful drain shutdown, and live
//! metrics. The [`workload`] subsystem generates the traffic: seeded
//! [`Scenario`]s expand into replayable [`Trace`]s (versioned JSONL,
//! instance-key-verified) that the load driver feeds through the engine
//! and checks bit-for-bit against serial ground truth. Above it all sits
//! the [`control`] plane: a content-hashed, durable [`FleetSpec`]
//! declares the desired fleet (tenants, prewarm set, worker count,
//! admission, derate levels, SLOs) and a [`Reconciler`] observes the
//! live engine, diffs observation against spec into a typed plan, and
//! executes it — with crash recovery from hash-verified
//! [`StateStore`] snapshots. Underneath the engine sits the [`sched`]
//! crate: per-worker bounded stealing deques (owners pop LIFO for cache
//! warmth, thieves steal FIFO batches from the cold end) with a global
//! overflow injector, exact admission accounting, and a parker that
//! wakes exactly one idle worker per submit — dissolving the
//! single-mutex dispatch bottleneck while keeping the bounded-queue
//! admission semantics and the determinism contract intact. The
//! [`telemetry`] spine makes the fleet
//! observable *per tenant*: every engine job emits a compact span
//! (queue-wait vs service-time, tenant topology fingerprint, outcome)
//! into a bounded never-blocking ring, a [`TenantLedger`] folds spans
//! into per-tenant latency histograms and outcome counters, and the
//! versioned [`TelemetrySnapshot`] feeds both operators (JSONL export)
//! and the control plane's autopilot — a pressure-driven
//! [`Autopilot`](control::Autopilot) that scales the worker fleet up
//! under queue or per-tenant p99 pressure and cooperatively retires it
//! when pressure clears. The evidence layer is the [`lab`]: a
//! versioned, byte-stable [`LabSpec`] declares an experiment (scenarios
//! × worker/shard grid × run mode), the runner replays it or probes it
//! to saturation ([`mod@workload::ramp`]), the results land in versioned
//! benchmark envelopes, and the lab's regression gate and trajectory
//! report consume those envelopes back. See `DESIGN.md`
//! for the instance → topo substrate → weight substrate → query → batch
//! → pool → sched → engine → workload → telemetry → control → lab
//! architecture and `EXPERIMENTS.md` for reproducing the measurements.
//!
//! # Quickstart
//!
//! ```
//! use duality::planar::gen;
//! use duality::solver::PlanarSolver;
//!
//! let g = gen::diag_grid(4, 4, 7).unwrap();
//! let caps = gen::random_undirected_capacities(g.num_edges(), 1, 8, 7);
//! let solver = PlanarSolver::builder(&g).capacities(caps).build()?;
//!
//! // Exact max flow and min cut share one cached decomposition.
//! let flow = solver.max_flow(0, g.num_vertices() - 1)?;
//! let cut = solver.min_st_cut(0, g.num_vertices() - 1)?;
//! assert!(flow.value > 0);
//! assert_eq!(flow.value, cut.value); // max-flow min-cut duality
//! assert_eq!(solver.stats().engine_builds, 1);
//!
//! // The round bill separates amortized substrate from marginal query.
//! println!("{}", flow.rounds);
//!
//! // Or phrase the workload as one typed batch: deduplicated, executed
//! // on a worker pool, one merged bill charging the substrate once.
//! use duality::Query;
//! let batch = solver.run_batch(&[
//!     Query::MaxFlow { s: 0, t: g.num_vertices() - 1 },
//!     Query::MinStCut { s: 0, t: g.num_vertices() - 1 },
//! ]);
//! assert!(batch.all_ok());
//! # Ok::<(), duality::DualityError>(())
//! ```
//!
//! The pre-solver free functions (`core::max_flow::max_st_flow`, …) remain
//! available as thin wrappers over the solver for gradual migration.

pub use duality_baselines as baselines;
pub use duality_bdd as bdd;
pub use duality_congest as congest;
pub use duality_core as core;
pub use duality_labeling as labeling;
pub use duality_minor_agg as minor_agg;
pub use duality_overlay as overlay;
pub use duality_planar as planar;

/// The solver subsystem (re-export of [`duality_core::solver`]).
pub use duality_core::solver;

/// The keyed serving layer (re-export of [`duality_core::pool`]).
pub use duality_core::pool;

/// The work-stealing scheduler (re-export of [`duality_sched`]):
/// per-worker bounded stealing deques (LIFO owner pop, FIFO steal) with
/// a global overflow injector, exact depth/high-water admission
/// accounting, one-wakeup-per-submit parking, pause/resume and
/// drain-on-close lifecycle, and cooperative retire credits for
/// scale-down.
pub use duality_sched as sched;

/// The sharded serving engine (re-export of [`duality_service`]): shard
/// routing over per-shard pools, a bounded work-stealing scheduler with
/// admission control, per-job deadlines and cancellation, graceful
/// drain shutdown, and live metrics.
pub use duality_service as service;

/// The scenario workload subsystem (re-export of [`duality_workload`]):
/// declarative seeded [`Scenario`]s (tenant fleets, spec-mutation
/// streams, query mixes, arrival schedules), versioned JSONL
/// [`Trace`] record/replay with per-event instance-key verification,
/// and the open-/closed-loop load driver that replays traces through
/// [`ServiceEngine`] and checks them bit-for-bit against serial ground
/// truth.
pub use duality_workload as workload;

/// The telemetry spine (re-export of [`duality_telemetry`]): per-job
/// span records from the engine into a bounded overwrite-oldest ring
/// sink, a [`TenantLedger`] attributing latency (queue-wait vs
/// service-time) and outcomes to tenants, and the versioned JSONL
/// [`TelemetrySnapshot`] the control plane's autopilot consumes.
pub use duality_telemetry as telemetry;

/// The declarative control plane (re-export of [`duality_control`]):
/// validated content-hashed [`FleetSpec`]s, the observe → diff → plan →
/// execute [`Reconciler`] driving a [`ServiceEngine`] toward its spec
/// within a bounded convergence budget, the telemetry-fed
/// [`Autopilot`](control::Autopilot) originating worker-scaling
/// decisions, and versioned hash-guarded [`StateStore`] snapshots for
/// controller restart.
pub use duality_control as control;

/// The experiment subsystem (re-export of [`duality_lab`]): declarative
/// versioned [`LabSpec`]s, the replay/saturation runner, readable +
/// writable benchmark [`Envelope`]s, the row-by-row regression gate
/// with per-metric tolerances, and the markdown trajectory report.
pub use duality_lab as lab;

pub use duality_control::{
    Action, ControlError, ConvergenceReport, FleetObservation, FleetSpec, Plan, ReconcilePolicy,
    Reconciler, Slo, StateStore, TenantDecl,
};
pub use duality_core::{
    BatchReport, DualityError, HeapSize, InstanceKey, Outcome, PlanarInstance, PlanarSolver,
    PoolStats, Query, ResidentEntry, SolverBuilder, SolverPool, SolverStats, TopoSubstrate,
};
pub use duality_lab::{EnvRow, Envelope, LabError, LabSpec, Tolerances};
pub use duality_service::{
    AdmissionPolicy, MetricsSnapshot, ServiceEngine, ServiceError, SubmitError, Ticket,
};
pub use duality_telemetry::{Telemetry, TelemetrySnapshot, TenantLedger};
pub use duality_workload::{
    DriverConfig, RampConfig, RampReport, RunReport, Scenario, Trace, WorkloadError,
};
